package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hetesim/internal/hin"
)

// reloadSchema builds the bibliographic test schema shared by the reload
// tests: authors write papers, papers are published in conferences.
func reloadSchema() *hin.Schema {
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("conference", 'C')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("published_in", "paper", "conference")
	return s
}

// reloadGraph builds a graph with gen extra authors, so successive
// generations have distinct fingerprints while the base queries keep
// working across every generation.
func reloadGraph(t testing.TB, gen int) *hin.Graph {
	t.Helper()
	b := hin.NewBuilder(reloadSchema())
	b.AddEdge("writes", "Tom", "p1")
	b.AddEdge("writes", "Mary", "p2")
	b.AddEdge("writes", "Mary", "p1")
	b.AddEdge("published_in", "p1", "KDD")
	b.AddEdge("published_in", "p2", "SIGMOD")
	for i := 0; i < gen; i++ {
		b.AddEdge("writes", fmt.Sprintf("gen%d", i), "p2")
	}
	return b.MustBuild()
}

// writeGraphFile persists g where the server's reload will re-read it.
func writeGraphFile(t testing.TB, path string, g *hin.Graph) {
	t.Helper()
	var buf bytes.Buffer
	if err := hin.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestHotReloadUnderLoad is the headline reload guarantee: while query
// traffic runs continuously, several graph reloads swap the serving
// generation and not one request fails — in-flight queries drain against
// the set they started with, new ones see the new graph. Run with -race
// this also proves the swap is properly synchronized.
func TestHotReloadUnderLoad(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "graph.json")
	writeGraphFile(t, graphPath, reloadGraph(t, 0))

	srv := New(reloadGraph(t, 0), WithReloadFrom(graphPath), WithLogf(t.Logf))
	srv.MarkReady()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var (
		stop     atomic.Bool
		failures atomic.Int64
		served   atomic.Int64
		wg       sync.WaitGroup
	)
	urls := []string{
		ts.URL + "/v1/pair?path=APC&source=Tom&target=KDD",
		ts.URL + "/v1/topk?path=APCPA&source=Mary&k=5",
		ts.URL + "/readyz",
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				url := urls[(w+i)%len(urls)]
				resp, err := http.Get(url)
				if err != nil {
					failures.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					body, _ := io.ReadAll(resp.Body)
					t.Errorf("GET %s = %d: %s", url, resp.StatusCode, body)
					failures.Add(1)
				}
				resp.Body.Close()
				served.Add(1)
			}
		}(w)
	}

	// A batch worker alongside the GET workers: every batch resolves one
	// engine-set snapshot, so its slots must all answer against a single
	// generation, and HS(Tom, KDD | APC) is exactly 1 in every generation
	// (Tom's one paper is KDD's one paper) — a swap mid-batch that mixed
	// generations or dropped shared chain state would surface here.
	batchReq, err := json.Marshal(batchRequest{Queries: []batchQueryBody{
		{Kind: "pair", Path: "APC", Source: "Tom", Target: "KDD"},
		{Kind: "pair", Path: "APC", Source: "Tom", Target: "KDD", Raw: true},
		{Kind: "topk", Path: "APCPA", Source: "Mary", K: 5},
		{Kind: "single_source", Path: "APC", Source: "Mary"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(batchReq))
			if err != nil {
				failures.Add(1)
				continue
			}
			var body batchResponse
			decodeErr := json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || decodeErr != nil {
				t.Errorf("POST /v1/batch = %d (%v)", resp.StatusCode, decodeErr)
				failures.Add(1)
				continue
			}
			for i, res := range body.Results {
				if res.Error != "" {
					t.Errorf("batch slot %d failed during reload: %s (%s)", i, res.Error, res.Code)
					failures.Add(1)
				}
			}
			for _, i := range []int{0, 1} {
				if body.Results[i].Score == nil || *body.Results[i].Score != 1 {
					t.Errorf("batch slot %d: HS(Tom,KDD|APC) = %v, want exactly 1", i, body.Results[i].Score)
					failures.Add(1)
				}
			}
			served.Add(1)
		}
	}()

	// Several reload cycles through distinct graph generations while the
	// workers hammer the query surface.
	fingerprints := make(map[string]bool)
	for gen := 1; gen <= 3; gen++ {
		writeGraphFile(t, graphPath, reloadGraph(t, gen))
		res, err := srv.Reload(context.Background())
		if err != nil {
			t.Fatalf("reload gen %d: %v", gen, err)
		}
		fingerprints[res.Fingerprint] = true
		time.Sleep(30 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d of %d requests failed across hot reloads", n, served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("load generator served no requests; test proves nothing")
	}
	if len(fingerprints) != 3 {
		t.Fatalf("3 reloads produced %d distinct fingerprints", len(fingerprints))
	}

	// The final generation is what new queries see: gen2 exists only in
	// generation 3 of the graph.
	resp, err := http.Get(ts.URL + "/v1/topk?path=APCPA&source=gen2&k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query for a node of the reloaded generation = %d", resp.StatusCode)
	}
}

// TestReloadEndpoint drives POST /v1/admin/reload end to end: a good
// reload answers 200 with the new generation's shape, a broken graph file
// answers 500 and leaves the old graph serving, and a server without a
// configured source refuses.
func TestReloadEndpoint(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "graph.json")
	writeGraphFile(t, graphPath, reloadGraph(t, 1))

	srv := New(reloadGraph(t, 0), WithReloadFrom(graphPath), WithLogf(t.Logf))
	srv.MarkReady()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	oldFP := srv.current().fingerprint

	resp, err := http.Post(ts.URL+"/v1/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var ok struct {
		Status string       `json:"status"`
		Reload ReloadResult `json:"reload"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ok); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ok.Status != "ok" {
		t.Fatalf("reload = %d %+v", resp.StatusCode, ok)
	}
	if ok.Reload.Nodes != reloadGraph(t, 1).TotalNodes() {
		t.Errorf("reloaded nodes = %d", ok.Reload.Nodes)
	}
	if srv.current().fingerprint == oldFP {
		t.Fatal("reload left the old graph serving")
	}

	// A corrupt graph file must not dethrone the serving graph.
	servingFP := srv.current().fingerprint
	if err := os.WriteFile(graphPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("reload of corrupt graph = %d: %s", resp.StatusCode, body)
	}
	if srv.current().fingerprint != servingFP {
		t.Fatal("failed reload replaced the serving graph")
	}
	if !srv.Ready() {
		t.Fatal("failed reload left the server not ready")
	}

	// No configured source: the endpoint refuses outright.
	bare := New(reloadGraph(t, 0))
	bare.MarkReady()
	tsBare := httptest.NewServer(bare.Handler())
	defer tsBare.Close()
	resp, err = http.Post(tsBare.URL+"/v1/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("reload without a source = %d", resp.StatusCode)
	}
}

// TestWarmStartFromSnapshot proves the boot path: one server materializes
// a path and saves a snapshot; a second server over the same graph warm-
// starts from it and has the chain matrices in cache before any query or
// precompute runs.
func TestWarmStartFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "chains.snap")

	first := New(reloadGraph(t, 0), WithSnapshotPath(snapPath), WithLogf(t.Logf))
	if err := first.Precompute("APC"); err != nil {
		t.Fatal(err)
	}
	if err := first.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	// Only chain matrices are persisted; transition/edge caches rebuild
	// cheaply from the graph.
	wantChains := first.current().engine.CacheStats().Chain
	if wantChains == 0 {
		t.Fatal("precompute cached no chains; snapshot would be empty")
	}

	second := New(reloadGraph(t, 0), WithSnapshotPath(snapPath), WithLogf(t.Logf))
	if n := second.current().engine.CacheSize(); n != 0 {
		t.Fatalf("fresh server has %d cached matrices before warm start", n)
	}
	warm, err := second.WarmStart()
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Fatal("warm start found a valid snapshot but reported cold")
	}
	if n := second.current().engine.CacheStats().Chain; n != wantChains {
		t.Fatalf("warm-started cache has %d chains, want %d", n, wantChains)
	}

	// A server over a different graph generation must reject the snapshot
	// as a mismatch and start cold — never serve another graph's matrices.
	other := New(reloadGraph(t, 5), WithSnapshotPath(snapPath), WithLogf(t.Logf))
	warm, err = other.WarmStart()
	if err == nil || warm {
		t.Fatalf("foreign snapshot admitted: warm=%v err=%v", warm, err)
	}
	if n := other.current().engine.CacheSize(); n != 0 {
		t.Fatalf("rejected snapshot still left %d matrices cached", n)
	}

	// Bit-flipped snapshot: rejected with a reason, cold start, no panic.
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	damaged := New(reloadGraph(t, 0), WithSnapshotPath(snapPath), WithLogf(t.Logf))
	warm, err = damaged.WarmStart()
	if err == nil || warm {
		t.Fatalf("corrupt snapshot admitted: warm=%v err=%v", warm, err)
	}

	// Missing snapshot: a clean cold start, not an error.
	cold := New(reloadGraph(t, 0), WithSnapshotPath(filepath.Join(dir, "absent.snap")))
	warm, err = cold.WarmStart()
	if err != nil || warm {
		t.Fatalf("missing snapshot: warm=%v err=%v, want cold and nil", warm, err)
	}
}

// TestReloadWarmsFromSnapshot checks a hot-reload re-warms the incoming
// engine set from the snapshot when the snapshot matches the new graph.
func TestReloadWarmsFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "graph.json")
	snapPath := filepath.Join(dir, "chains.snap")
	writeGraphFile(t, graphPath, reloadGraph(t, 2))

	// Save a snapshot for generation 2 — the generation the reload loads.
	donor := New(reloadGraph(t, 2), WithSnapshotPath(snapPath))
	if err := donor.Precompute("APC"); err != nil {
		t.Fatal(err)
	}
	if err := donor.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}

	srv := New(reloadGraph(t, 0), WithReloadFrom(graphPath), WithSnapshotPath(snapPath), WithLogf(t.Logf))
	srv.MarkReady()
	res, err := srv.Reload(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmChains == 0 {
		t.Fatal("reload into the snapshot's generation imported no chains")
	}
	if n := srv.current().engine.CacheSize(); n == 0 {
		t.Fatal("reloaded engine has an empty cache despite a matching snapshot")
	}
}

// TestReloadBusy checks overlapping reloads: the loser answers 409 and
// the winner's swap still lands.
func TestReloadBusy(t *testing.T) {
	srv := New(reloadGraph(t, 0), WithReloadFrom("/nonexistent"))
	srv.MarkReady()
	srv.reloadMu.Lock()
	_, err := srv.Reload(context.Background())
	srv.reloadMu.Unlock()
	if !errors.Is(err, errReloadBusy) {
		t.Fatalf("overlapping reload err = %v, want errReloadBusy", err)
	}
}
