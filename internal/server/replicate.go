package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"hetesim/internal/hin"
	"hetesim/internal/obs"
	"hetesim/internal/snapshot"
	"hetesim/internal/wal"
)

// Primary/follower replication. The primary is the one replica that accepts
// POST /v1/admin/edges; it exposes its write-ahead log as a tail-read
// stream (GET /v1/admin/wal?from=seq) and its serving graph as a full
// resync source (GET /v1/admin/graph). A follower polls the tail, records
// each batch in its own log at the primary-assigned sequence, and applies
// it through the same incremental path a direct mutation takes — so
// /readyz's wal_seq means the same thing fleet-wide and scores converge
// bit-identically (HeteSim is deterministic over a given graph). When the
// follower's sequence reaches the stream head, fingerprints must match;
// a mismatch is divergence: counted, flagged at /readyz, and self-healed
// by a full resync, which is also the fallback when the requested sequence
// was compacted away (HTTP 410).
var (
	metWALTailStreams = obs.Default().Counter("hetesim_wal_tail_streams_total",
		"Replication tail reads served over GET /v1/admin/wal.")
	metWALTailCompacted = obs.Default().Counter("hetesim_wal_tail_compacted_total",
		"Tail reads refused with 410 because the requested sequence was compacted away.")
	metGraphFetches = obs.Default().Counter("hetesim_graph_fetch_total",
		"Full-graph resync downloads served over GET /v1/admin/graph.")
	metFollowPulls = obs.Default().Counter("hetesim_follower_pulls_total",
		"Replication pulls issued by follower mode.")
	metFollowBatches = obs.Default().Counter("hetesim_follower_batches_total",
		"Mutation batches applied from a replication stream.")
	metFollowResyncs = obs.Default().Counter("hetesim_follower_resyncs_total",
		"Full graph resyncs performed by follower mode (compaction overrun or divergence).")
	metFollowDivergence = obs.Default().Counter("hetesim_follower_divergence_total",
		"Fingerprint mismatches detected at stream head by follower mode.")
	metNotPrimary = obs.Default().Counter("hetesim_mutation_not_primary_total",
		"Mutation batches refused because this replica is a follower.")
)

const (
	defaultTailBatches = 256  // batches per tail read unless ?max= says otherwise
	maxTailBatches     = 1024 // hard cap per tail read, bounding walMu hold time
	maxPullsPerTick    = 64   // catch-up pulls per follower tick before yielding
	maxGraphFetchBytes = 1 << 31
)

// handleWALTail is GET /v1/admin/wal?from=seq[&max=n]: stream the log's
// batches from the given sequence in the CRC-framed replication format,
// fingerprint- and head-stamped. 410 means the sequence was compacted away
// and the follower must full-resync. The read holds the write lock —
// bounded by max, so a poll costs a writer at most one small scan.
func (s *Server) handleWALTail(w http.ResponseWriter, r *http.Request) {
	if s.walPath == "" {
		writeJSON(w, http.StatusNotImplemented,
			errorBody{Error: "replication is disabled: no -wal-path configured", Code: "mutations_disabled"})
		return
	}
	from := uint64(1)
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: "from must be a non-negative integer", Code: "bad_request"})
			return
		}
		from = n
	}
	maxBatches := defaultTailBatches
	if v := r.URL.Query().Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: "max must be a positive integer", Code: "bad_request"})
			return
		}
		maxBatches = min(n, maxTailBatches)
	}

	s.walMu.Lock()
	if s.wal == nil {
		s.walMu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable,
			errorBody{Error: "write-ahead log is not open", Code: "wal_not_open"})
		return
	}
	batches, err := s.wal.TailSince(from, maxBatches)
	if errors.Is(err, wal.ErrCompacted) {
		floor := s.wal.MinRetained()
		s.walMu.Unlock()
		metWALTailCompacted.Inc()
		w.Header().Set("X-Hetesim-WAL-Floor", strconv.FormatUint(floor, 10))
		writeJSON(w, http.StatusGone,
			errorBody{Error: err.Error() + "; fetch /v1/admin/graph and re-follow", Code: "compacted"})
		return
	}
	// Head and fingerprint are captured under the same lock as the batches,
	// so the triple is consistent: applying every logged batch through head
	// onto the log's base yields exactly the graph this fingerprint names.
	stream := wal.Stream{
		Fingerprint: s.current().fingerprint,
		Head:        s.wal.LastSeq(),
		Batches:     batches,
	}
	s.walMu.Unlock()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError,
			errorBody{Error: "reading wal tail: " + err.Error(), Code: "wal_tail_failed"})
		return
	}
	raw, err := wal.EncodeStream(stream)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError,
			errorBody{Error: "encoding wal stream: " + err.Error(), Code: "wal_tail_failed"})
		return
	}
	metWALTailStreams.Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Hetesim-Fingerprint", fmt.Sprintf("%016x", stream.Fingerprint))
	w.Header().Set("X-Hetesim-WAL-Seq", strconv.FormatUint(stream.Head, 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(raw)))
	w.Write(raw)
}

// handleGraphFetch is GET /v1/admin/graph: the serving graph in its file
// format, stamped with the fingerprint and WAL sequence it embodies — the
// full-resync source for a follower that fell behind compaction or
// diverged. The (graph, seq) pair is captured under the write lock so no
// batch can land between the two; serialization happens outside the lock
// against the immutable captured graph.
func (s *Server) handleGraphFetch(w http.ResponseWriter, r *http.Request) {
	s.walMu.Lock()
	es := s.current()
	seq := s.lastWalSeq.Load()
	if s.wal != nil {
		seq = s.wal.LastSeq()
	}
	s.walMu.Unlock()

	var buf bytes.Buffer
	if err := hin.Write(&buf, es.g); err != nil {
		writeJSON(w, http.StatusInternalServerError,
			errorBody{Error: "encoding graph: " + err.Error(), Code: "graph_encode_failed"})
		return
	}
	metGraphFetches.Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Hetesim-Fingerprint", fmt.Sprintf("%016x", es.fingerprint))
	w.Header().Set("X-Hetesim-WAL-Seq", strconv.FormatUint(seq, 10))
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Write(buf.Bytes())
}

// FollowerOptions configures RunFollower.
type FollowerOptions struct {
	// Target is what the follower polls: the primary's base URL directly,
	// or a router's base URL — the follower asks GET /v1/admin/primary
	// first and follows whatever the router elected (a target without that
	// endpoint is taken to be the primary itself).
	Target string
	// Self is this replica's advertised base URL. When the router elects
	// this very replica primary, follower mode stands down and the replica
	// accepts writes. Empty means "never primary".
	Self string
	// Interval is the poll cadence (default 1s).
	Interval time.Duration
	// MaxBatch bounds batches per pull (default 256).
	MaxBatch int
	// Client issues the HTTP requests (default: 30s-timeout client).
	Client *http.Client
	// FetchSnapshot, when set, warms the chain cache from the primary after
	// a full resync (wired to router.FetchSnapshot by the daemon). Failure
	// is logged, not fatal — a resynced follower just starts colder.
	FetchSnapshot func(ctx context.Context, base string) (*snapshot.Snapshot, error)
	Logf          func(string, ...any)
}

// Follower-internal sentinels: both mean "incremental catch-up cannot
// proceed; full-resync from the primary".
var (
	errFollowerDiverged = errors.New("server: follower diverged: fingerprint mismatch at stream head")
	errFollowerForked   = errors.New("server: follower holds sequences past the primary's head")
)

// RunFollower pulls the primary's WAL tail every interval and applies it,
// blocking until ctx is canceled. It owns the replica's replication state:
// /readyz gains follows, replication_lag_seconds and diverged fields, and
// POST /v1/admin/edges refuses with 503/not_primary unless the router
// elected this replica primary. Call after OpenWAL (the local log position
// is where following resumes).
func (s *Server) RunFollower(ctx context.Context, o FollowerOptions) {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = defaultTailBatches
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	s.followCfg.Store(true)
	t := time.NewTicker(o.Interval)
	defer t.Stop()
	for {
		s.followTick(ctx, o)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// followTick is one resolve-pull-apply cycle.
func (s *Server) followTick(ctx context.Context, o FollowerOptions) {
	primary, err := s.resolvePrimary(ctx, o)
	if err != nil {
		o.Logf("server: follower: resolving primary via %s: %v", o.Target, err)
		return
	}
	if primary == "" {
		// Failover window: no primary elected. Hold position; keep serving
		// reads at the current sequence.
		s.setFollowing("")
		s.actingPrimary.Store(false)
		return
	}
	if o.Self != "" && primary == o.Self {
		// The router elected us: stand down as follower, accept writes.
		s.setFollowing("")
		s.actingPrimary.Store(true)
		s.diverged.Store(false)
		s.lastCaughtUpAt.Store(time.Now().UnixNano())
		return
	}
	s.actingPrimary.Store(false)
	s.setFollowing(primary)

	for i := 0; i < maxPullsPerTick; i++ {
		if ctx.Err() != nil {
			return
		}
		st, compacted, err := s.pullTail(ctx, o, primary)
		if err != nil {
			o.Logf("server: follower: pulling from %s: %v", primary, err)
			return
		}
		if compacted {
			o.Logf("server: follower: behind %s's compaction horizon, full resync", primary)
			if err := s.resyncFromPrimary(ctx, o, primary); err != nil {
				o.Logf("server: follower: resync from %s: %v", primary, err)
			}
			return
		}
		caughtUp, err := s.applyStream(ctx, st)
		switch {
		case errors.Is(err, errFollowerDiverged) || errors.Is(err, errFollowerForked):
			s.diverged.Store(true)
			metFollowDivergence.Inc()
			o.Logf("server: follower: %v; full resync from %s", err, primary)
			if rerr := s.resyncFromPrimary(ctx, o, primary); rerr != nil {
				o.Logf("server: follower: resync from %s: %v", primary, rerr)
			}
			return
		case err != nil:
			o.Logf("server: follower: applying stream from %s: %v", primary, err)
			return
		case caughtUp:
			s.diverged.Store(false)
			s.lastCaughtUpAt.Store(time.Now().UnixNano())
			return
		}
	}
}

// resolvePrimary asks the target who the primary is. A target without the
// endpoint (a plain replica, or an old router) is itself the primary.
func (s *Server) resolvePrimary(ctx context.Context, o FollowerOptions) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, o.Target+"/v1/admin/primary", nil)
	if err != nil {
		return "", err
	}
	resp, err := o.Client.Do(req)
	if err != nil {
		return "", err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotFound {
		return o.Target, nil
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET /v1/admin/primary: status %d", resp.StatusCode)
	}
	var body struct {
		Primary string `json:"primary"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err != nil {
		return "", fmt.Errorf("decoding primary response: %w", err)
	}
	return body.Primary, nil
}

// pullTail fetches one bounded tail read from the primary. compacted=true
// means 410: the follower's position predates the primary's retained floor.
func (s *Server) pullTail(ctx context.Context, o FollowerOptions, primary string) (*wal.Stream, bool, error) {
	from := s.lastWalSeq.Load() + 1
	url := fmt.Sprintf("%s/v1/admin/wal?from=%d&max=%d", primary, from, o.MaxBatch)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, false, err
	}
	metFollowPulls.Inc()
	resp, err := o.Client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxGraphFetchBytes))
	if err != nil {
		return nil, false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return nil, true, nil
	default:
		return nil, false, fmt.Errorf("GET /v1/admin/wal: status %d: %s", resp.StatusCode, truncateBody(body))
	}
	st, err := wal.DecodeStream(body)
	if err != nil {
		return nil, false, err
	}
	return st, false, nil
}

func truncateBody(b []byte) string {
	const n = 256
	if len(b) > n {
		b = b[:n]
	}
	return string(bytes.TrimSpace(b))
}

// applyStream records and applies one replication pull under the write
// lock. Batches at or below the local position are skipped (overlap is
// harmless); a gap, a local position past the stream head, or a
// fingerprint mismatch once caught up all abort — the first is a protocol
// violation, the latter two are forks, and every abort path resolves by
// full resync. Returns whether the follower is now caught up to the
// stream's head.
func (s *Server) applyStream(ctx context.Context, st *wal.Stream) (bool, error) {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	my := s.lastWalSeq.Load()
	if my > st.Head {
		// We hold acked-but-never-replicated history from a deposed primary
		// incarnation (or the fleet was rebuilt under us).
		return false, fmt.Errorf("%w: local seq %d, primary head %d", errFollowerForked, my, st.Head)
	}
	for _, b := range st.Batches {
		if b.Seq <= my {
			continue
		}
		if b.Seq != my+1 {
			return false, fmt.Errorf("server: replication gap: have %d, stream jumps to %d", my, b.Seq)
		}
		// Log first, apply second — the same ack-implies-durable order the
		// primary uses, so a follower crash replays exactly what it recorded.
		if s.wal != nil {
			if err := s.wal.AppendBatch(b); err != nil {
				return false, fmt.Errorf("server: logging replicated batch %d: %w", b.Seq, err)
			}
			metWALBytes.Set(float64(s.wal.Size()))
		}
		if b.Key != "" {
			if _, dup := s.applied[b.Key]; dup {
				// Crash-window duplicate the primary also skipped at its own
				// replay; record position, do not re-apply.
				metMutationDuplicates.Inc()
				s.lastWalSeq.Store(b.Seq)
				s.walBatches++
				my = b.Seq
				continue
			}
		}
		if _, err := s.applyLocked(ctx, b.Key, b.Ops, b.Seq); err != nil {
			return false, fmt.Errorf("server: applying replicated batch %d: %w", b.Seq, err)
		}
		metFollowBatches.Inc()
		my = b.Seq
	}
	if my < st.Head {
		return false, nil
	}
	if s.current().fingerprint != st.Fingerprint {
		return false, fmt.Errorf("%w: local %016x, primary %016x at seq %d",
			errFollowerDiverged, s.current().fingerprint, st.Fingerprint, my)
	}
	// Same compaction policy as the primary: fold the local log into the
	// local base once it outgrows the threshold. Sequence numbering is
	// monotonic across compactions, so the replication position survives.
	if s.walCompactBytes > 0 && s.wal != nil && s.wal.Size() > s.walCompactBytes {
		if err := s.compactLocked(); err != nil {
			s.logf("server: follower wal compaction: %v", err)
		}
	}
	return true, nil
}

// resyncFromPrimary replaces the follower's graph wholesale with the
// primary's: fetch GET /v1/admin/graph, adopt it (durable base first, then
// log reset, then serve — the same order compaction uses, so a crash at
// any point leaves a coherent pair), move the replication position to the
// stamped sequence, and best-effort warm the chain cache from the
// primary's snapshot.
func (s *Server) resyncFromPrimary(ctx context.Context, o FollowerOptions, primary string) error {
	metFollowResyncs.Inc()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, primary+"/v1/admin/graph", nil)
	if err != nil {
		return err
	}
	resp, err := o.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxGraphFetchBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/admin/graph: status %d: %s", resp.StatusCode, truncateBody(body))
	}
	seq, err := strconv.ParseUint(resp.Header.Get("X-Hetesim-WAL-Seq"), 10, 64)
	if err != nil {
		return fmt.Errorf("parsing X-Hetesim-WAL-Seq: %w", err)
	}
	wantFP, err := strconv.ParseUint(resp.Header.Get("X-Hetesim-Fingerprint"), 16, 64)
	if err != nil {
		return fmt.Errorf("parsing X-Hetesim-Fingerprint: %w", err)
	}
	g, err := hin.Read(bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("decoding fetched graph: %w", err)
	}
	if g.Fingerprint() != wantFP {
		return fmt.Errorf("fetched graph fingerprint %016x does not match advertised %016x",
			g.Fingerprint(), wantFP)
	}

	s.walMu.Lock()
	next := s.newEngineSet(g)
	if s.graphPath != "" {
		if err := s.saveGraph(g); err != nil {
			s.walMu.Unlock()
			return fmt.Errorf("writing resynced base graph: %w", err)
		}
		s.lastSavedFP = next.fingerprint
	}
	if s.wal != nil && next.fingerprint != s.wal.Fingerprint() {
		if err := s.wal.Reset(next.fingerprint, s.checkpointEntriesLocked()); err != nil {
			s.walMu.Unlock()
			return fmt.Errorf("rebinding wal to resynced graph: %w", err)
		}
		s.walBatches = 0
		metWALBytes.Set(float64(s.wal.Size()))
	}
	s.cur.Store(next)
	s.lastWalSeq.Store(seq)
	s.walMu.Unlock()
	o.Logf("server: follower: resynced from %s at seq %d (fingerprint %016x)", primary, seq, wantFP)

	if o.FetchSnapshot != nil {
		snap, err := o.FetchSnapshot(ctx, primary)
		if err != nil {
			o.Logf("server: follower: warming from %s after resync: %v", primary, err)
			return nil
		}
		if n, err := s.ImportSnapshot(snap); err != nil {
			o.Logf("server: follower: importing %s's snapshot after resync: %v", primary, err)
		} else {
			o.Logf("server: follower: warmed %d chains from %s after resync", n, primary)
		}
	}
	return nil
}

// setFollowing records the primary currently being followed ("" = none).
func (s *Server) setFollowing(p string) { s.followingPrimary.Store(&p) }

// FollowingPrimary reports the primary this replica currently follows, ""
// when none is elected, this replica is itself primary, or follower mode
// is off.
func (s *Server) FollowingPrimary() string {
	if p := s.followingPrimary.Load(); p != nil {
		return *p
	}
	return ""
}

// Diverged reports whether the last stream-head fingerprint comparison
// failed and the follower has not yet converged again.
func (s *Server) Diverged() bool { return s.diverged.Load() }

// AcceptsWrites reports whether a mutation posted directly to this
// replica would be admitted: always for a standalone daemon, and for a
// follower-configured one only while it holds the primary election.
func (s *Server) AcceptsWrites() bool {
	return !s.followCfg.Load() || s.actingPrimary.Load()
}

// refuseNotPrimary answers a mutation with 503/not_primary when this
// replica runs follower mode and has not been elected primary. The
// X-Hetesim-Primary header names the place to write, when known.
func (s *Server) refuseNotPrimary(w http.ResponseWriter) bool {
	if !s.followCfg.Load() || s.actingPrimary.Load() {
		return false
	}
	metNotPrimary.Inc()
	if p := s.FollowingPrimary(); p != "" {
		w.Header().Set("X-Hetesim-Primary", p)
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable,
		errorBody{Error: "this replica is a follower; send writes to the primary (or through the router)", Code: "not_primary"})
	return true
}

// replicationReadyFields adds the follower's replication view to the
// /readyz body: the primary it follows, how stale it may be (seconds since
// it last confirmed catch-up; -1 = never yet), and whether it detected
// divergence. Emitted only in follower mode, and suppressed while acting
// as the elected primary — absence of the fields is what tells the router
// "not a follower, rank by other signals".
func (s *Server) replicationReadyFields(body map[string]any) {
	if !s.followCfg.Load() {
		return
	}
	if s.actingPrimary.Load() {
		body["role"] = "primary"
		return
	}
	body["role"] = "follower"
	body["follows"] = s.FollowingPrimary()
	lag := -1.0
	if t := s.lastCaughtUpAt.Load(); t > 0 {
		lag = time.Since(time.Unix(0, t)).Seconds()
	}
	body["replication_lag_seconds"] = lag
	body["diverged"] = s.diverged.Load()
}
