package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"hetesim/internal/hin"
	"hetesim/internal/wal"
)

// newWALServer builds a ready server over the generation-0 reload graph
// with an open WAL (and optionally a base graph file for compaction),
// served over httptest.
func newWALServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "graph.bin")
	writeGraphFile(t, graphPath, reloadGraph(t, 0))
	all := append([]Option{
		WithWALPath(filepath.Join(dir, "edges.wal")),
		WithReloadFrom(graphPath),
		WithLogf(t.Logf),
	}, opts...)
	srv := New(reloadGraph(t, 0), all...)
	srv.MarkReady()
	if _, err := srv.OpenWAL(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// startFollower runs srv's follower loop against target until test end.
func startFollower(t *testing.T, srv *Server, target string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.RunFollower(ctx, FollowerOptions{
			Target:   target,
			Interval: 5 * time.Millisecond,
			Logf:     t.Logf,
		})
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
}

// waitConverged polls until follower matches primary in both sequence and
// fingerprint.
func waitConverged(t *testing.T, primary, follower *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if follower.lastWalSeq.Load() == primary.lastWalSeq.Load() &&
			follower.current().fingerprint == primary.current().fingerprint &&
			!follower.Diverged() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower did not converge: seq %d/%d, fingerprint %016x/%016x, diverged=%v",
		follower.lastWalSeq.Load(), primary.lastWalSeq.Load(),
		follower.current().fingerprint, primary.current().fingerprint, follower.Diverged())
}

// TestFollowerConvergence is the basic replication guarantee: batches
// acked on the primary arrive on the follower through the WAL tail and
// produce a bit-identical graph — same fingerprint, same scores — while
// the follower reports its replication view at /readyz and refuses direct
// writes.
func TestFollowerConvergence(t *testing.T) {
	primary, pts := newWALServer(t)
	follower, fts := newWALServer(t)
	startFollower(t, follower, pts.URL)

	for i, ops := range mutationBatches() {
		resp, mb := postMutation(t, pts.URL, fmt.Sprintf("rep-%d", i), ops)
		if resp.StatusCode != http.StatusOK || mb.Status != "applied" {
			t.Fatalf("batch %d = %d %+v", i, resp.StatusCode, mb)
		}
	}
	waitConverged(t, primary, follower)

	// Scores must be bit-identical across replicas (HeteSim is
	// deterministic over a given graph; equality of fingerprints implies
	// equality of graphs, this is the end-to-end check of it).
	var pp, fp pairBody
	getJSON(t, pts.URL+"/v1/pair?path=APC&source=Carl&target=KDD", http.StatusOK, &pp)
	getJSON(t, fts.URL+"/v1/pair?path=APC&source=Carl&target=KDD", http.StatusOK, &fp)
	if pp.Score != fp.Score || pp.Score <= 0 {
		t.Fatalf("replicated score %v != primary score %v", fp.Score, pp.Score)
	}

	// The follower's /readyz carries its replication view.
	var ready map[string]any
	getJSON(t, fts.URL+"/readyz", http.StatusOK, &ready)
	if ready["role"] != "follower" || ready["follows"] != pts.URL {
		t.Errorf("follower readyz = %v", ready)
	}
	if lag, ok := ready["replication_lag_seconds"].(float64); !ok || lag < 0 || lag > 60 {
		t.Errorf("replication_lag_seconds = %v", ready["replication_lag_seconds"])
	}
	if ready["diverged"] != false {
		t.Errorf("diverged = %v", ready["diverged"])
	}
	// The primary is not follower-configured: no replication fields.
	var pready map[string]any
	getJSON(t, pts.URL+"/readyz", http.StatusOK, &pready)
	if _, ok := pready["follows"]; ok {
		t.Errorf("primary readyz leaked follower fields: %v", pready)
	}

	// Writes to the follower are refused and redirected.
	resp, _ := postMutation(t, fts.URL, "direct", mutationBatches()[0])
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower write = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Hetesim-Primary"); got != pts.URL {
		t.Errorf("X-Hetesim-Primary = %q, want %q", got, pts.URL)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("not_primary refusal has no Retry-After")
	}

	// Follower restart resumes from its own log, not from scratch.
	seq := follower.lastWalSeq.Load()
	if seq == 0 {
		t.Fatal("follower position is 0 after convergence")
	}
}

// TestFollowTailEndpoint pins the wire surface of GET /v1/admin/wal: a
// decodable CRC-framed stream with consistent header stamps, bounded
// reads, empty caught-up pulls, and parameter validation.
func TestFollowTailEndpoint(t *testing.T) {
	primary, pts := newWALServer(t)
	for i, ops := range mutationBatches() {
		if resp, _ := postMutation(t, pts.URL, fmt.Sprintf("t-%d", i), ops); resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d status %d", i, resp.StatusCode)
		}
	}

	get := func(q string) *http.Response {
		resp, err := http.Get(pts.URL + "/v1/admin/wal" + q)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := get("?from=1")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tail status = %d", resp.StatusCode)
	}
	raw := make([]byte, 1<<20)
	n, _ := io.ReadFull(resp.Body, raw)
	st, err := wal.DecodeStream(raw[:n])
	if err != nil {
		t.Fatalf("decoding tail stream: %v", err)
	}
	if st.Head != 3 || len(st.Batches) != 3 || st.Fingerprint != primary.current().fingerprint {
		t.Fatalf("stream = head %d, %d batches, fp %016x", st.Head, len(st.Batches), st.Fingerprint)
	}
	if got := resp.Header.Get("X-Hetesim-WAL-Seq"); got != "3" {
		t.Errorf("X-Hetesim-WAL-Seq = %q", got)
	}

	// Bounded pull and caught-up pull.
	resp = get("?from=2&max=1")
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if st, err = wal.DecodeStream(b); err != nil || len(st.Batches) != 1 || st.Batches[0].Seq != 2 || st.Head != 3 {
		t.Fatalf("bounded pull = %+v, %v", st, err)
	}
	resp = get("?from=4")
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if st, err = wal.DecodeStream(b); err != nil || len(st.Batches) != 0 || st.Head != 3 {
		t.Fatalf("caught-up pull = %+v, %v", st, err)
	}

	// Parameter validation.
	for _, q := range []string{"?from=x", "?max=0", "?max=-1"} {
		resp = get(q)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /v1/admin/wal%s = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestFollowerResyncAfterCompaction covers compaction-while-following: the
// primary compacts its log past a stale follower's position, the tail read
// answers 410, and the follower falls back to a full graph fetch — ending
// bit-identical, with its own base graph and log rebound to the new
// generation.
func TestFollowerResyncAfterCompaction(t *testing.T) {
	primary, pts := newWALServer(t)
	for i, ops := range mutationBatches() {
		if resp, _ := postMutation(t, pts.URL, fmt.Sprintf("c-%d", i), ops); resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d status %d", i, resp.StatusCode)
		}
	}
	// Fold everything into the base: a follower at position 0 is now behind
	// the retained floor.
	primary.walMu.Lock()
	if err := primary.compactLocked(); err != nil {
		primary.walMu.Unlock()
		t.Fatal(err)
	}
	primary.walMu.Unlock()

	resp, err := http.Get(pts.URL + "/v1/admin/wal?from=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("tail below floor = %d, want 410", resp.StatusCode)
	}
	if resp.Header.Get("X-Hetesim-WAL-Floor") != "4" {
		t.Errorf("X-Hetesim-WAL-Floor = %q, want 4", resp.Header.Get("X-Hetesim-WAL-Floor"))
	}

	follower, _ := newWALServer(t)
	startFollower(t, follower, pts.URL)
	waitConverged(t, primary, follower)
	if follower.lastWalSeq.Load() != 3 {
		t.Fatalf("resynced position = %d, want 3", follower.lastWalSeq.Load())
	}
	// The resync rebound the follower's own log to the adopted base, so new
	// deltas replicate incrementally from here.
	if follower.wal.Fingerprint() != primary.current().fingerprint {
		t.Fatal("follower log not rebound to the resynced base")
	}
	if resp, mb := postMutation(t, pts.URL, "post-resync", []hin.Op{upsert("writes", "Dana", "p1", 1)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-resync write = %d %+v", resp.StatusCode, mb)
	}
	waitConverged(t, primary, follower)
}

// TestFollowerDivergenceSelfHeals deliberately corrupts a follower's
// serving graph; the next caught-up poll's fingerprint comparison detects
// the fork, flags it, and a full resync converges it back.
func TestFollowerDivergenceSelfHeals(t *testing.T) {
	primary, pts := newWALServer(t)
	follower, fts := newWALServer(t)
	startFollower(t, follower, pts.URL)

	if resp, _ := postMutation(t, pts.URL, "d-0", mutationBatches()[0]); resp.StatusCode != http.StatusOK {
		t.Fatal("seed write failed")
	}
	waitConverged(t, primary, follower)

	// Corrupt the follower: swap in a graph it never replicated, keeping
	// its replication position — equal wal_seq, different fingerprint.
	follower.walMu.Lock()
	bad, _, err := follower.current().g.Apply([]hin.Op{upsert("writes", "Tom", "p2", 9)})
	if err != nil {
		follower.walMu.Unlock()
		t.Fatal(err)
	}
	follower.cur.Store(follower.newEngineSet(bad))
	follower.walMu.Unlock()

	// Within a poll interval the follower must notice (the caught-up pull
	// compares fingerprints at equal seq), report it, and self-heal.
	deadline := time.Now().Add(10 * time.Second)
	sawDiverged := false
	for time.Now().Before(deadline) && !sawDiverged {
		var ready map[string]any
		getJSON(t, fts.URL+"/readyz", http.StatusOK, &ready)
		sawDiverged, _ = ready["diverged"].(bool)
		if follower.current().fingerprint == primary.current().fingerprint {
			break // already healed — the flag window can be shorter than our poll
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitConverged(t, primary, follower)
	var pp, fp pairBody
	getJSON(t, pts.URL+"/v1/pair?path=APC&source=Carl&target=KDD", http.StatusOK, &pp)
	getJSON(t, fts.URL+"/v1/pair?path=APC&source=Carl&target=KDD", http.StatusOK, &fp)
	if pp.Score != fp.Score {
		t.Fatalf("post-heal score %v != primary %v", fp.Score, pp.Score)
	}
}
