// Package server exposes relevance search over a heterogeneous network as
// an HTTP JSON API: pair queries, top-k queries, and schema/stats
// introspection, under any of the implemented measures (HeteSim, PCRW,
// PathSim). It is the online-query deployment surface for the offline
// materialization story of Section 4.6 — engines keep their per-path
// caches across requests, so repeated queries on a path are served from
// materialized reaching distributions.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"hetesim/internal/baseline"
	"hetesim/internal/core"
	"hetesim/internal/hin"
	"hetesim/internal/metapath"
	"hetesim/internal/rank"
)

// Server answers relevance queries over one graph. It is safe for
// concurrent use: all underlying engines are.
type Server struct {
	g       *hin.Graph
	engine  *core.Engine
	raw     *core.Engine
	pcrw    *baseline.PCRW
	pathsim *baseline.PathSim
	mux     *http.ServeMux
}

// New creates a Server over g.
func New(g *hin.Graph) *Server {
	e := core.NewEngine(g)
	s := &Server{
		g:       g,
		engine:  e,
		raw:     core.NewEngine(g, core.WithNormalization(false)),
		pcrw:    baseline.NewPCRWFromEngine(e),
		pathsim: baseline.NewPathSim(g),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/schema", s.handleSchema)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/pair", s.handlePair)
	s.mux.HandleFunc("GET /v1/topk", s.handleTopK)
	s.mux.HandleFunc("GET /v1/explain", s.handleExplain)
	s.mux.HandleFunc("GET /v1/why", s.handleWhy)
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Precompute materializes the given relevance path in the HeteSim engine,
// so subsequent queries on it are served from cached reaching
// distributions.
func (s *Server) Precompute(spec string) error {
	p, err := metapath.Parse(s.g.Schema(), spec)
	if err != nil {
		return err
	}
	return s.engine.Precompute(p)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing left to do but note it server-side.
		fmt.Println("server: encoding response:", err)
	}
}

// writeError maps domain errors to HTTP statuses: unknown objects are 404,
// malformed queries 400, everything else 500.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, hin.ErrUnknownNode):
		status = http.StatusNotFound
	case errors.Is(err, hin.ErrUnknownType),
		errors.Is(err, hin.ErrUnknownRelation),
		errors.Is(err, hin.ErrAmbiguous),
		errors.Is(err, metapath.ErrBadSyntax),
		errors.Is(err, metapath.ErrEmptyPath),
		errors.Is(err, metapath.ErrNotChained),
		errors.Is(err, baseline.ErrAsymmetricPath),
		errors.Is(err, errBadRequest):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

var errBadRequest = errors.New("bad request")

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type schemaBody struct {
	Types     []typeBody     `json:"types"`
	Relations []relationBody `json:"relations"`
}

type typeBody struct {
	Name   string `json:"name"`
	Abbrev string `json:"abbrev,omitempty"`
	Count  int    `json:"count"`
}

type relationBody struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	Target string `json:"target"`
	Edges  int    `json:"edges"`
}

func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request) {
	var body schemaBody
	for _, t := range s.g.Schema().Types() {
		ab := ""
		if t.Abbrev != 0 {
			ab = string(t.Abbrev)
		}
		body.Types = append(body.Types, typeBody{Name: t.Name, Abbrev: ab, Count: s.g.NodeCount(t.Name)})
	}
	for _, r := range s.g.Schema().Relations() {
		adj, err := s.g.Adjacency(r.Name)
		if err != nil {
			writeError(w, err)
			return
		}
		body.Relations = append(body.Relations, relationBody{
			Name: r.Name, Source: r.Source, Target: r.Target, Edges: adj.NNZ(),
		})
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"nodes": s.g.TotalNodes(),
		"edges": s.g.TotalEdges(),
	})
}

// query holds the decoded common parameters of pair/topk requests.
type query struct {
	path    *metapath.Path
	source  string
	measure string
	raw     bool
}

func (s *Server) decodeQuery(r *http.Request) (query, error) {
	q := r.URL.Query()
	spec := q.Get("path")
	if spec == "" {
		return query{}, fmt.Errorf("%w: missing path parameter", errBadRequest)
	}
	p, err := metapath.Parse(s.g.Schema(), spec)
	if err != nil {
		return query{}, err
	}
	source := q.Get("source")
	if source == "" {
		return query{}, fmt.Errorf("%w: missing source parameter", errBadRequest)
	}
	measure := q.Get("measure")
	if measure == "" {
		measure = "hetesim"
	}
	switch measure {
	case "hetesim", "pcrw", "pathsim":
	default:
		return query{}, fmt.Errorf("%w: unknown measure %q", errBadRequest, measure)
	}
	raw := false
	if v := q.Get("raw"); v != "" {
		raw, err = strconv.ParseBool(v)
		if err != nil {
			return query{}, fmt.Errorf("%w: raw=%q", errBadRequest, v)
		}
		if measure != "hetesim" {
			return query{}, fmt.Errorf("%w: raw applies only to hetesim", errBadRequest)
		}
	}
	return query{path: p, source: source, measure: measure, raw: raw}, nil
}

type pairBody struct {
	Path    string  `json:"path"`
	Source  string  `json:"source"`
	Target  string  `json:"target"`
	Measure string  `json:"measure"`
	Score   float64 `json:"score"`
}

func (s *Server) handlePair(w http.ResponseWriter, r *http.Request) {
	q, err := s.decodeQuery(r)
	if err != nil {
		writeError(w, err)
		return
	}
	target := r.URL.Query().Get("target")
	if target == "" {
		writeError(w, fmt.Errorf("%w: missing target parameter", errBadRequest))
		return
	}
	var score float64
	switch q.measure {
	case "hetesim":
		e := s.engine
		if q.raw {
			e = s.raw
		}
		score, err = e.Pair(q.path, q.source, target)
	case "pcrw":
		score, err = s.pcrw.Pair(q.path, q.source, target)
	case "pathsim":
		score, err = s.pathsim.Pair(q.path, q.source, target)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, pairBody{
		Path: q.path.String(), Source: q.source, Target: target,
		Measure: q.measure, Score: score,
	})
}

type topKBody struct {
	Path    string    `json:"path"`
	Source  string    `json:"source"`
	Measure string    `json:"measure"`
	Results []hitBody `json:"results"`
}

type hitBody struct {
	ID    string  `json:"id"`
	Score float64 `json:"score"`
}

type explainBody struct {
	Path    string     `json:"path"`
	Queries int        `json:"queries"`
	Report  string     `json:"report"`
	Plans   []planBody `json:"plans"`
}

type planBody struct {
	Kind        string  `json:"kind"`
	Flops       float64 `json:"flops"`
	Materialize float64 `json:"materialize"`
	Description string  `json:"description"`
}

type whyBody struct {
	Path          string             `json:"path"`
	Source        string             `json:"source"`
	Target        string             `json:"target"`
	Score         float64            `json:"score"`
	Contributions []contributionBody `json:"contributions"`
}

type contributionBody struct {
	Label    string  `json:"label"`
	Value    float64 `json:"value"`
	Fraction float64 `json:"fraction"`
}

// handleWhy explains a pair's HeteSim score by its top meeting-object
// contributions.
func (s *Server) handleWhy(w http.ResponseWriter, r *http.Request) {
	q, err := s.decodeQuery(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if q.measure != "hetesim" {
		writeError(w, fmt.Errorf("%w: why applies only to hetesim", errBadRequest))
		return
	}
	target := r.URL.Query().Get("target")
	if target == "" {
		writeError(w, fmt.Errorf("%w: missing target parameter", errBadRequest))
		return
	}
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		k, err = strconv.Atoi(v)
		if err != nil || k <= 0 {
			writeError(w, fmt.Errorf("%w: k=%q", errBadRequest, v))
			return
		}
	}
	e := s.engine
	if q.raw {
		e = s.raw
	}
	src, err := s.g.NodeIndex(q.path.Source(), q.source)
	if err != nil {
		writeError(w, err)
		return
	}
	dst, err := s.g.NodeIndex(q.path.Target(), target)
	if err != nil {
		writeError(w, err)
		return
	}
	score, contribs, err := e.PairContributions(q.path, src, dst, k)
	if err != nil {
		writeError(w, err)
		return
	}
	body := whyBody{Path: q.path.String(), Source: q.source, Target: target, Score: score}
	for _, c := range contribs {
		body.Contributions = append(body.Contributions, contributionBody{
			Label: c.Label, Value: c.Value, Fraction: c.Fraction,
		})
	}
	writeJSON(w, http.StatusOK, body)
}

// handleExplain exposes the HeteSim query planner: the estimated cost of
// every physical plan for a path, amortized over an expected query count.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	spec := r.URL.Query().Get("path")
	if spec == "" {
		writeError(w, fmt.Errorf("%w: missing path parameter", errBadRequest))
		return
	}
	p, err := metapath.Parse(s.g.Schema(), spec)
	if err != nil {
		writeError(w, err)
		return
	}
	queries := 1
	if v := r.URL.Query().Get("queries"); v != "" {
		queries, err = strconv.Atoi(v)
		if err != nil || queries < 1 {
			writeError(w, fmt.Errorf("%w: queries=%q", errBadRequest, v))
			return
		}
	}
	report, plans, err := s.engine.Explain(p, queries)
	if err != nil {
		writeError(w, err)
		return
	}
	body := explainBody{Path: p.String(), Queries: queries, Report: report}
	for _, pl := range plans {
		body.Plans = append(body.Plans, planBody{
			Kind: string(pl.Kind), Flops: pl.Flops,
			Materialize: pl.Materialize, Description: pl.Description,
		})
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	q, err := s.decodeQuery(r)
	if err != nil {
		writeError(w, err)
		return
	}
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		k, err = strconv.Atoi(v)
		if err != nil || k <= 0 {
			writeError(w, fmt.Errorf("%w: k=%q", errBadRequest, v))
			return
		}
	}
	var scores []float64
	switch q.measure {
	case "hetesim":
		e := s.engine
		if q.raw {
			e = s.raw
		}
		scores, err = e.SingleSource(q.path, q.source)
	case "pcrw":
		scores, err = s.pcrw.SingleSource(q.path, q.source)
	case "pathsim":
		scores, err = s.pathsim.SingleSource(q.path, q.source)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	items, err := rank.List(scores, s.g.NodeIDs(q.path.Target()), k)
	if err != nil {
		writeError(w, err)
		return
	}
	body := topKBody{Path: q.path.String(), Source: q.source, Measure: q.measure}
	for _, it := range items {
		body.Results = append(body.Results, hitBody{ID: it.ID, Score: it.Score})
	}
	writeJSON(w, http.StatusOK, body)
}
