// Package server exposes relevance search over a heterogeneous network as
// an HTTP JSON API: pair queries, top-k queries, and schema/stats
// introspection, under any of the implemented measures (HeteSim, PCRW,
// PathSim). It is the online-query deployment surface for the offline
// materialization story of Section 4.6 — engines keep their per-path
// caches across requests, so repeated queries on a path are served from
// materialized reaching distributions.
//
// The server owns the request lifecycle: every query runs under the
// request's context (bounded by an optional per-request deadline), panics
// in handlers are recovered into 500 responses, load beyond a configurable
// in-flight cap is shed with 429, and a timed-out exact query can degrade
// to the Monte Carlo estimator instead of failing outright.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hetesim/internal/baseline"
	"hetesim/internal/core"
	"hetesim/internal/hin"
	"hetesim/internal/metapath"
	"hetesim/internal/obs"
	"hetesim/internal/rank"
	"hetesim/internal/relevance"
	"hetesim/internal/snapshot"
	"hetesim/internal/wal"
)

// HTTP-layer observability, reported into the process-wide registry next
// to the engine and kernel metrics so one GET /metrics scrape shows the
// whole pipeline.
var (
	metRequests = obs.Default().CounterVec("hetesim_http_requests_total",
		"HTTP requests served, by route and status code.", "route", "status")
	metLatency = obs.Default().Histogram("hetesim_http_request_duration_seconds",
		"End-to-end /v1 query latency.", obs.DefSecondsBuckets())
	metInflight = obs.Default().Gauge("hetesim_http_inflight_queries",
		"Currently executing /v1 queries.")
	metShed = obs.Default().Counter("hetesim_http_shed_total",
		"Queries shed with 429 at the in-flight cap.")
	metDegraded = obs.Default().Counter("hetesim_http_degraded_total",
		"Queries answered by the Monte Carlo fallback after the exact plan timed out.")
	metSlowQueries = obs.Default().Counter("hetesim_http_slow_queries_total",
		"Queries admitted to the slow-query log.")
)

// StatusClientClosedRequest is the de-facto (nginx) status for a request
// whose client went away before the response was ready.
const StatusClientClosedRequest = 499

// Server answers relevance queries over one graph generation at a time.
// It is safe for concurrent use: all underlying engines are, and the
// serving engine set sits behind an atomic pointer so an admin reload (or
// SIGHUP) swaps the whole graph without failing a single in-flight query —
// requests resolve the set once at entry and drain against it.
type Server struct {
	cur     atomic.Pointer[engineSet]
	mux     *http.ServeMux
	handler http.Handler

	engineOpts   []core.Option
	queryTimeout time.Duration // per-request deadline for /v1 queries; 0 = none
	maxInflight  int           // concurrent /v1 queries before shedding; 0 = unlimited
	maxBody      int64         // request body cap in bytes
	maxPathSteps int           // longest accepted relevance path
	degradeWalks int           // Monte Carlo walks for degraded answers; 0 = disabled
	degradeGrace time.Duration // extra budget granted to the degraded plan
	defaultPlan  core.PlanKind // forced physical plan when a request has no ?plan=; "" = auto
	topKBudget   float64       // default topk-approx error budget; 0 = engine default

	slowThreshold time.Duration // slow-query log admission bar; 0 = disabled
	slowCapacity  int           // slow-query log ring size
	slowlog       *obs.SlowLog  // nil when disabled

	maxBatchQueries int // queries accepted per /v1/batch request; 0 = unlimited
	batchWorkers    int // batch scheduler worker bound; 0 = runtime default

	relevanceMaxLen   int                // longest enumerated path for /v1/relevance
	relevanceMaxPaths int                // candidate-path cap for /v1/relevance
	pathWeights       map[string]float64 // learned ensemble weights by path spec; nil = learned mode off

	snapshotPath string      // chain-cache snapshot location; "" disables
	graphPath    string      // graph file re-read on Reload; "" disables
	fsys         snapshot.FS // injectable for fault-injection tests
	logf         func(string, ...any)

	walPath         string // edge-delta write-ahead log; "" disables mutations
	walCompactBytes int64  // log size that triggers compaction; 0 = never

	saveMu   sync.Mutex // serializes SaveSnapshot
	reloadMu sync.Mutex // serializes Reload
	specMu   sync.Mutex // guards precomputeSpecs

	// walMu is the single-writer lock of the mutation path: WAL append,
	// engine-set swap, applied-key table and compaction all happen under
	// it — and the reload's read-build-swap window, so a reload can never
	// clobber a concurrently acked batch. Handlers use TryLock, shedding
	// concurrent writers with 503.
	walMu        sync.Mutex
	wal          *wal.Log
	applied      map[string]uint64 // idempotency key -> acked sequence number
	appliedOrder []string          // applied keys, oldest ack first (FIFO eviction)
	walBatches   int               // batches in the log since its base graph
	lastSavedFP  uint64            // fingerprint of the graph compaction last wrote to graphPath
	draining     atomic.Bool       // shutdown drain: refuse mutations and reloads
	// precomputeSpecs are the boot-time materialization paths, kept so a
	// hot-reload can re-warm the replacement graph.
	precomputeSpecs []string

	inflight chan struct{}
	state    atomic.Int32 // ReadyState

	// Replica-freshness signals for /readyz, read lock-free by the probe:
	// the last acked WAL sequence (cached here so the probe never contends
	// with walMu) and when this process last saved or imported a snapshot
	// (unix nanos; 0 = never).
	lastWalSeq  atomic.Uint64
	snapSavedAt atomic.Int64

	// Replication (follower-mode) state, owned by RunFollower — see
	// replicate.go. followCfg: follower mode is on; actingPrimary: the
	// router elected this very replica, so it accepts writes again;
	// followingPrimary: base URL currently being followed; lastCaughtUpAt:
	// unix nanos of the last confirmed fingerprint-matching catch-up;
	// diverged: the last stream-head comparison failed.
	followCfg        atomic.Bool
	actingPrimary    atomic.Bool
	followingPrimary atomic.Pointer[string]
	lastCaughtUpAt   atomic.Int64
	diverged         atomic.Bool
}

// Option configures a Server.
type Option func(*Server)

// WithQueryTimeout bounds every /v1 query by d: the request context
// expires after d and the engine stops at the next propagation step. 0
// (the default) disables the server-side deadline; client disconnects
// still cancel the query.
func WithQueryTimeout(d time.Duration) Option { return func(s *Server) { s.queryTimeout = d } }

// WithMaxInflight sheds /v1 queries beyond n concurrently running ones
// with 429 and a Retry-After header. 0 (the default) disables shedding.
func WithMaxInflight(n int) Option { return func(s *Server) { s.maxInflight = n } }

// WithMaxBodyBytes caps request body reads at n bytes (default 1 MiB).
func WithMaxBodyBytes(n int64) Option { return func(s *Server) { s.maxBody = n } }

// WithMaxPathSteps caps the length of relevance paths accepted by the
// query endpoints (default 128 steps), so a single adversarial request
// cannot queue an arbitrarily long matrix chain.
func WithMaxPathSteps(n int) Option { return func(s *Server) { s.maxPathSteps = n } }

// WithBatchLimits bounds POST /v1/batch: at most maxQueries queries per
// request (0 = unlimited; the default is 1024), executed by at most
// workers concurrent scheduler goroutines (0 = a runtime-sized default).
// A batch occupies a single WithMaxInflight slot regardless of its size —
// workers is the knob that keeps one giant batch from monopolizing cores.
func WithBatchLimits(maxQueries, workers int) Option {
	return func(s *Server) { s.maxBatchQueries, s.batchWorkers = maxQueries, workers }
}

// WithDegradedTopK enables graceful degradation: when an exact hetesim
// /v1/topk or /v1/pair query exceeds its deadline, the server answers
// from `walks` Monte Carlo walks instead, marking the response
// "approximate": true. 0 (the default) disables the fallback.
func WithDegradedTopK(walks int) Option { return func(s *Server) { s.degradeWalks = walks } }

// WithRelevanceLimits bounds POST /v1/relevance path enumeration: paths of
// at most maxLen steps (0 keeps the default of 4), at most maxPaths
// candidates per query (0 keeps the default of 16). Requests asking beyond
// either limit are rejected with 400.
func WithRelevanceLimits(maxLen, maxPaths int) Option {
	return func(s *Server) {
		if maxLen > 0 {
			s.relevanceMaxLen = maxLen
		}
		if maxPaths > 0 {
			s.relevanceMaxPaths = maxPaths
		}
	}
}

// WithPathWeights supplies learned ensemble weights (path spec → weight,
// e.g. from learn.PathWeights via relevance.LoadWeightsFile) and enables
// the "learned" weighting mode of POST /v1/relevance.
func WithPathWeights(weights map[string]float64) Option {
	return func(s *Server) { s.pathWeights = weights }
}

// WithDefaultPlan pins the physical plan of hetesim queries that carry no
// explicit ?plan= override (the -force-plan daemon flag). Empty or
// core.PlanAuto (the default) lets the cost-based optimizer choose.
func WithDefaultPlan(kind core.PlanKind) Option { return func(s *Server) { s.defaultPlan = kind } }

// WithTopKErrorBudget sets the default error budget of the topk-approx
// plan for /v1/topk requests that carry no ?error_budget= override (the
// -topk-error-budget daemon flag). Must lie in (0, 1); a tighter (smaller)
// budget buys a higher embedding rank and a deeper exact re-rank. 0 (the
// default) keeps the engine's built-in budget.
func WithTopKErrorBudget(b float64) Option { return func(s *Server) { s.topKBudget = b } }

// WithEngineOptions forwards options (e.g. core.WithCacheLimit) to the
// server's HeteSim engines.
func WithEngineOptions(opts ...core.Option) Option {
	return func(s *Server) { s.engineOpts = append(s.engineOpts, opts...) }
}

// WithSlowLog configures the slow-query log: /v1 queries slower than
// threshold are retained (newest capacity entries) with their per-stage
// traces and served at GET /v1/slowlog. The default is 1s/128; threshold
// 0 disables the log and with it the always-on tracing of /v1 queries.
func WithSlowLog(threshold time.Duration, capacity int) Option {
	return func(s *Server) { s.slowThreshold, s.slowCapacity = threshold, capacity }
}

// WithSnapshotPath points the server at its chain-cache snapshot: WarmStart
// loads it at boot, SaveSnapshot/RunSnapshotSaver persist to it, and
// reloads try to re-warm from it. Empty (the default) disables snapshots.
func WithSnapshotPath(path string) Option { return func(s *Server) { s.snapshotPath = path } }

// WithReloadFrom names the graph file POST /v1/admin/reload (and SIGHUP in
// the daemon) re-reads. Empty (the default) disables hot-reload.
func WithReloadFrom(graphPath string) Option { return func(s *Server) { s.graphPath = graphPath } }

// WithWALPath points the server at its edge-delta write-ahead log:
// OpenWAL replays it at boot and POST /v1/admin/edges appends to it, so
// acked mutations survive a crash. Empty (the default) disables the
// mutation endpoint.
func WithWALPath(path string) Option { return func(s *Server) { s.walPath = path } }

// WithWALCompactBytes folds the write-ahead log into a freshly written
// base graph file whenever the log outgrows n bytes, bounding replay time.
// Compaction needs WithReloadFrom (the base graph location). 0 (the
// default) never compacts on size; reloads still compact.
func WithWALCompactBytes(n int64) Option { return func(s *Server) { s.walCompactBytes = n } }

// WithSnapshotFS substitutes the filesystem used for snapshot I/O —
// the hook the fault-injection tests use. Defaults to the real filesystem.
func WithSnapshotFS(fsys snapshot.FS) Option { return func(s *Server) { s.fsys = fsys } }

// WithLogf sets the server's background logger (reload re-warm, snapshot
// saves). Defaults to log.Printf.
func WithLogf(logf func(string, ...any)) Option { return func(s *Server) { s.logf = logf } }

// New creates a Server over g. The server starts in StateCold: construct,
// then optionally WarmStart from a snapshot, then PrecomputeBackground
// (which flips to ready — immediately when there is nothing to
// materialize) or MarkReady directly.
func New(g *hin.Graph, opts ...Option) *Server {
	s := &Server{
		mux:               http.NewServeMux(),
		maxBody:           1 << 20,
		maxPathSteps:      128,
		maxBatchQueries:   1024,
		degradeGrace:      2 * time.Second,
		relevanceMaxLen:   4,
		relevanceMaxPaths: 16,
		slowThreshold:     time.Second,
		slowCapacity:      128,
		fsys:              snapshot.OS{},
		logf:              log.Printf,
		applied:           make(map[string]uint64),
	}
	for _, o := range opts {
		o(s)
	}
	if s.slowThreshold > 0 {
		s.slowlog = obs.NewSlowLog(s.slowThreshold, s.slowCapacity)
	}
	s.cur.Store(s.newEngineSet(g))
	s.setState(StateCold)
	if s.maxInflight > 0 {
		s.inflight = make(chan struct{}, s.maxInflight)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.Handle("GET /metrics", obs.Default().Handler())
	s.mux.HandleFunc("GET /v1/schema", s.handleSchema)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/slowlog", s.handleSlowLog)
	s.mux.HandleFunc("GET /v1/pair", s.handlePair)
	s.mux.HandleFunc("GET /v1/topk", s.handleTopK)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/relevance", s.handleRelevance)
	s.mux.HandleFunc("GET /v1/explain", s.handleExplain)
	s.mux.HandleFunc("GET /v1/why", s.handleWhy)
	s.mux.HandleFunc("POST /v1/admin/reload", s.handleReload)
	s.mux.HandleFunc("POST /v1/admin/edges", s.handleMutate)
	s.mux.HandleFunc("GET /v1/admin/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/admin/wal", s.handleWALTail)
	s.mux.HandleFunc("GET /v1/admin/graph", s.handleGraphFetch)
	s.handler = s.buildHandler()
	return s
}

// Handler returns the HTTP handler tree, wrapped in the robustness
// middleware (panic recovery, body limits, load shedding, deadlines).
func (s *Server) Handler() http.Handler { return s.handler }

// buildHandler assembles the middleware chain, outermost first: measure
// the request, recover from panics, cap body reads, shed load, then
// apply the query deadline. Instrumentation sits outermost so shed,
// panicking, and timed-out requests are all counted with their final
// status.
func (s *Server) buildHandler() http.Handler {
	var h http.Handler = s.mux
	h = s.applyTimeout(h)
	h = s.limitInflight(h)
	h = s.limitBody(h)
	h = s.recoverPanics(h)
	h = s.instrument(h)
	return h
}

// isQueryPath selects the /v1 query surface for the robustness middleware
// (deadline, shedding, slow log). Admin endpoints are excluded: a reload
// must not be shed under load or cut off by the query deadline.
func isQueryPath(r *http.Request) bool {
	return strings.HasPrefix(r.URL.Path, "/v1/") && !strings.HasPrefix(r.URL.Path, "/v1/admin/")
}

// routeLabel maps a request path to a bounded label value: the fixed
// route set keeps /metrics cardinality constant no matter what paths
// clients probe.
func routeLabel(path string) string {
	switch path {
	case "/healthz", "/readyz", "/metrics",
		"/v1/schema", "/v1/stats", "/v1/slowlog",
		"/v1/pair", "/v1/topk", "/v1/batch", "/v1/relevance", "/v1/explain", "/v1/why",
		"/v1/admin/reload", "/v1/admin/edges", "/v1/admin/snapshot",
		"/v1/admin/wal", "/v1/admin/graph":
		return path
	}
	return "other"
}

// statusWriter captures the response status for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// wantTrace reports whether the client asked for the trace inline
// (?trace=1 on a /v1 query).
func wantTrace(r *http.Request) bool {
	v := r.URL.Query().Get("trace")
	if v == "" {
		return false
	}
	b, err := strconv.ParseBool(v)
	return err == nil && b
}

// instrument is the outermost middleware: it counts every request by
// route and status, tracks in-flight /v1 queries, threads a per-query
// trace through the context (when the client asked with ?trace=1, or
// always while the slow-query log is enabled so slow entries carry their
// stage breakdown), and feeds finished queries into the slow-query log.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !isQueryPath(r) {
			sw := &statusWriter{ResponseWriter: w}
			next.ServeHTTP(sw, r)
			metRequests.With(routeLabel(r.URL.Path), strconv.Itoa(sw.statusOr200())).Inc()
			return
		}
		start := time.Now()
		metInflight.Add(1)
		defer metInflight.Add(-1)
		var tr *obs.Trace
		if s.slowlog != nil || wantTrace(r) {
			var ctx context.Context
			ctx, tr = obs.NewTrace(r.Context())
			r = r.WithContext(ctx)
		}
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		d := time.Since(start)
		status := sw.statusOr200()
		metRequests.With(routeLabel(r.URL.Path), strconv.Itoa(status)).Inc()
		metLatency.Observe(d.Seconds())
		if s.slowlog != nil {
			entry := obs.SlowEntry{
				Time:   start,
				Query:  r.Method + " " + r.URL.RequestURI(),
				Status: status,
				Trace:  tr.Report(d),
			}
			if s.slowlog.Observe(entry, d) {
				metSlowQueries.Inc()
			}
		}
	})
}

func (w *statusWriter) statusOr200() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// recoverPanics converts a handler panic into a 500 JSON response instead
// of killing the daemon. http.ErrAbortHandler is re-panicked so aborted
// connections keep their net/http semantics.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				if v == http.ErrAbortHandler {
					panic(v)
				}
				log.Printf("server: panic serving %s %s: %v", r.Method, r.URL.Path, v)
				writeJSON(w, http.StatusInternalServerError,
					errorBody{Error: "internal server error", Code: "internal_panic"})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// limitBody caps how much of a request body any handler can read.
func (s *Server) limitBody(next http.Handler) http.Handler {
	if s.maxBody <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		next.ServeHTTP(w, r)
	})
}

// limitInflight sheds /v1 queries beyond the in-flight cap with 429 +
// Retry-After, without queueing: a saturated server answers cheaply and
// immediately rather than stacking goroutines. Health endpoints bypass
// the limiter so orchestrators can always probe a busy server.
func (s *Server) limitInflight(next http.Handler) http.Handler {
	if s.inflight == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !isQueryPath(r) {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			next.ServeHTTP(w, r)
		default:
			metShed.Inc()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests,
				errorBody{Error: "server is at its in-flight query limit", Code: "overloaded"})
		}
	})
}

// applyTimeout bounds /v1 queries by the configured per-request deadline.
func (s *Server) applyTimeout(next http.Handler) http.Handler {
	if s.queryTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// /v1/batch and /v1/relevance are exempt: the batch scheduler
		// applies the same budget to each query (each ensemble path)
		// individually, so a big batch or wide ensemble is not killed
		// whole by a deadline sized for one query.
		if isQueryPath(r) && r.URL.Path != "/v1/batch" && r.URL.Path != "/v1/relevance" {
			ctx, cancel := context.WithTimeout(r.Context(), s.queryTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(w, r)
	})
}

// precomputeOn materializes one relevance path spec in es's HeteSim
// engine. Reload uses it to re-warm a freshly swapped-in engine set.
func (s *Server) precomputeOn(es *engineSet, spec string) error {
	p, err := metapath.Parse(es.g.Schema(), spec)
	if err != nil {
		return err
	}
	return es.engine.Precompute(context.Background(), p)
}

// recordSpec remembers a boot-time materialization path so hot-reloads can
// re-warm the replacement graph with the same working set.
func (s *Server) recordSpec(spec string) {
	s.specMu.Lock()
	defer s.specMu.Unlock()
	for _, have := range s.precomputeSpecs {
		if have == spec {
			return
		}
	}
	s.precomputeSpecs = append(s.precomputeSpecs, spec)
}

// Precompute materializes the given relevance path in the HeteSim engine,
// so subsequent queries on it are served from cached reaching
// distributions. The spec is remembered for hot-reload re-warming.
func (s *Server) Precompute(spec string) error {
	if err := s.precomputeOn(s.current(), spec); err != nil {
		return err
	}
	s.recordSpec(spec)
	return nil
}

// PrecomputeBackground parses specs immediately — so a bad flag still
// fails fast at startup — then materializes the paths in a background
// goroutine, keeping startup off the critical path. The server reports
// warming (/readyz answers 503) until materialization finishes, then
// flips to ready; with no specs it flips immediately. A path that fails
// to materialize is logged and skipped rather than blocking readiness,
// since its queries can still be answered from cold caches. After a
// successful warmup the chain cache is persisted to the snapshot path,
// so the next boot warm-starts.
func (s *Server) PrecomputeBackground(specs []string, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	es := s.current()
	paths := make([]*metapath.Path, 0, len(specs))
	for _, spec := range specs {
		p, err := metapath.Parse(es.g.Schema(), spec)
		if err != nil {
			return err
		}
		paths = append(paths, p)
		s.recordSpec(spec)
	}
	if len(paths) == 0 {
		s.MarkReady()
		return nil
	}
	s.setState(StateWarming)
	go func() {
		for _, p := range paths {
			if err := es.engine.Precompute(context.Background(), p); err != nil {
				logf("server: precomputing %s: %v", p, err)
				continue
			}
			logf("server: materialized %s", p)
		}
		s.MarkReady()
		if s.snapshotPath != "" {
			if err := s.saveSnapshotRetry(context.Background(), 3, 100*time.Millisecond, logf); err != nil {
				logf("server: post-warmup snapshot save: %v", err)
			}
		}
	}()
	return nil
}

type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing left to do but note it server-side.
		log.Println("server: encoding response:", err)
	}
}

// writeError maps domain errors to HTTP statuses and stable machine-
// readable codes: unknown objects are 404/not_found, malformed queries
// 400/bad_request, an expired per-request deadline 504/deadline_exceeded,
// a client that went away 499/canceled, everything else 500/internal.
func writeError(w http.ResponseWriter, err error) {
	status, code := errorStatusCode(err)
	writeJSON(w, status, errorBody{Error: err.Error(), Code: code})
}

// errorStatusCode maps a domain error to its HTTP status and stable code —
// shared by whole-request errors (writeError) and the per-slot errors of
// POST /v1/batch responses.
func errorStatusCode(err error) (int, string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest, "canceled"
	case errors.Is(err, hin.ErrUnknownNode):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, hin.ErrUnknownType),
		errors.Is(err, hin.ErrUnknownRelation),
		errors.Is(err, hin.ErrAmbiguous),
		errors.Is(err, metapath.ErrBadSyntax),
		errors.Is(err, metapath.ErrEmptyPath),
		errors.Is(err, metapath.ErrNotChained),
		errors.Is(err, baseline.ErrAsymmetricPath),
		errors.Is(err, core.ErrPlanNotApplicable),
		errors.Is(err, hin.ErrBadOp),
		errors.Is(err, relevance.ErrBadOptions),
		errors.Is(err, relevance.ErrNoPaths),
		errors.Is(err, errBadRequest):
		return http.StatusBadRequest, "bad_request"
	}
	return http.StatusInternalServerError, "internal"
}

var errBadRequest = errors.New("bad request")

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is the readiness probe. It reports the lifecycle state by
// name — cold and warming answer 503 (do not route traffic yet); ready
// and reloading answer 200 (a reload keeps serving from the old graph).
// The body also carries the serving graph's fingerprint, so an operator
// can confirm from the probe alone which generation answered.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	st := s.State()
	body := map[string]any{
		"status":      st.String(),
		"fingerprint": fmt.Sprintf("%016x", s.current().fingerprint),
		"wal_seq":     s.lastWalSeq.Load(),
	}
	// snapshot_age_seconds ranks replica warmth: how long ago this process
	// last saved or imported a chain-cache snapshot. -1 = never.
	if t := s.snapSavedAt.Load(); t > 0 {
		body["snapshot_age_seconds"] = time.Since(time.Unix(0, t)).Seconds()
	} else {
		body["snapshot_age_seconds"] = -1.0
	}
	s.replicationReadyFields(body)
	if !s.Ready() {
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

type schemaBody struct {
	Types     []typeBody     `json:"types"`
	Relations []relationBody `json:"relations"`
}

type typeBody struct {
	Name   string `json:"name"`
	Abbrev string `json:"abbrev,omitempty"`
	Count  int    `json:"count"`
}

type relationBody struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	Target string `json:"target"`
	Edges  int    `json:"edges"`
}

func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request) {
	g := s.current().g
	var body schemaBody
	for _, t := range g.Schema().Types() {
		ab := ""
		if t.Abbrev != 0 {
			ab = string(t.Abbrev)
		}
		body.Types = append(body.Types, typeBody{Name: t.Name, Abbrev: ab, Count: g.NodeCount(t.Name)})
	}
	for _, r := range g.Schema().Relations() {
		adj, err := g.Adjacency(r.Name)
		if err != nil {
			writeError(w, err)
			return
		}
		body.Relations = append(body.Relations, relationBody{
			Name: r.Name, Source: r.Source, Target: r.Target, Edges: adj.NNZ(),
		})
	}
	writeJSON(w, http.StatusOK, body)
}

// statsCache merges the normalized and raw engines' cache snapshots, so
// operators see total cache pressure regardless of which engine served a
// query.
func addCacheInfo(a, b core.CacheInfo) core.CacheInfo {
	return core.CacheInfo{
		Transition: a.Transition + b.Transition,
		Edge:       a.Edge + b.Edge,
		Chain:      a.Chain + b.Chain,
		Evictions:  a.Evictions + b.Evictions,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	es := s.current()
	cache := addCacheInfo(es.engine.CacheStats(), es.raw.CacheStats())
	// Optimizer selections per plan kind, merged over the normalized and
	// raw engines (both serve hetesim queries).
	plans := es.engine.PlanSelections()
	for k, v := range es.raw.PlanSelections() {
		plans[k] += v
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"nodes":           es.g.TotalNodes(),
		"edges":           es.g.TotalEdges(),
		"fingerprint":     fmt.Sprintf("%016x", es.fingerprint),
		"cached_matrices": es.engine.CacheSize() + es.raw.CacheSize(),
		"cache":           cache,
		"plans":           plans,
		// The configuration that produced the numbers above, so a stats
		// snapshot is interpretable on its own.
		"options": map[string]any{
			"cache_limit":          es.engine.CacheLimit(),
			"degrade_walks":        s.degradeWalks,
			"query_timeout_ms":     float64(s.queryTimeout) / float64(time.Millisecond),
			"max_inflight":         s.maxInflight,
			"max_path_steps":       s.maxPathSteps,
			"batch_max_queries":    s.maxBatchQueries,
			"batch_workers":        s.batchWorkers,
			"relevance_max_len":    s.relevanceMaxLen,
			"relevance_max_paths":  s.relevanceMaxPaths,
			"path_weights":         len(s.pathWeights),
			"slowlog_threshold_ms": float64(s.slowThreshold) / float64(time.Millisecond),
			"topk_error_budget":    s.topKBudget,
		},
	})
}

// handleSlowLog serves the ring-buffered slow-query log, newest first.
func (s *Server) handleSlowLog(w http.ResponseWriter, _ *http.Request) {
	if s.slowlog == nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"enabled": false, "entries": []obs.SlowEntry{},
		})
		return
	}
	entries := s.slowlog.Entries()
	if entries == nil {
		entries = []obs.SlowEntry{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":      true,
		"threshold_ms": float64(s.slowlog.Threshold()) / float64(time.Millisecond),
		"total":        s.slowlog.Total(),
		"entries":      entries,
	})
}

// query holds the decoded common parameters of pair/topk requests.
type query struct {
	path      *metapath.Path
	source    string
	measure   string
	raw       bool
	plan      core.PlanKind // forced physical plan; PlanAuto lets the optimizer choose
	errBudget float64       // topk-approx error budget; 0 = server/engine default
}

func (s *Server) decodeQuery(es *engineSet, r *http.Request) (query, error) {
	q := r.URL.Query()
	spec := q.Get("path")
	if spec == "" {
		return query{}, fmt.Errorf("%w: missing path parameter", errBadRequest)
	}
	p, err := metapath.Parse(es.g.Schema(), spec)
	if err != nil {
		return query{}, err
	}
	if s.maxPathSteps > 0 && p.Len() > s.maxPathSteps {
		return query{}, fmt.Errorf("%w: path has %d steps, limit is %d", errBadRequest, p.Len(), s.maxPathSteps)
	}
	source := q.Get("source")
	if source == "" {
		return query{}, fmt.Errorf("%w: missing source parameter", errBadRequest)
	}
	measure := q.Get("measure")
	if measure == "" {
		measure = "hetesim"
	}
	switch measure {
	case "hetesim", "pcrw", "pathsim":
	default:
		return query{}, fmt.Errorf("%w: unknown measure %q", errBadRequest, measure)
	}
	raw := false
	if v := q.Get("raw"); v != "" {
		raw, err = strconv.ParseBool(v)
		if err != nil {
			return query{}, fmt.Errorf("%w: raw=%q", errBadRequest, v)
		}
		if measure != "hetesim" {
			return query{}, fmt.Errorf("%w: raw applies only to hetesim", errBadRequest)
		}
	}
	plan := core.PlanAuto
	if v := q.Get("plan"); v != "" {
		plan, err = core.ParsePlanKind(v)
		if err != nil {
			return query{}, err
		}
		if measure != "hetesim" && plan != core.PlanAuto {
			return query{}, fmt.Errorf("%w: plan applies only to hetesim", errBadRequest)
		}
	} else if s.defaultPlan != "" {
		plan = s.defaultPlan
	}
	budget := s.topKBudget
	if v := q.Get("error_budget"); v != "" {
		budget, err = strconv.ParseFloat(v, 64)
		if err != nil || budget <= 0 || budget >= 1 {
			return query{}, fmt.Errorf("%w: error_budget=%q outside (0,1)", errBadRequest, v)
		}
		if measure != "hetesim" {
			return query{}, fmt.Errorf("%w: error_budget applies only to hetesim", errBadRequest)
		}
	}
	return query{path: p, source: source, measure: measure, raw: raw, plan: plan, errBudget: budget}, nil
}

// degradeCtx returns a fresh context for the degraded plan of a request
// whose deadline already expired: it inherits the request's values but
// not its (spent) deadline, bounded by the degradation grace budget.
func (s *Server) degradeCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.WithoutCancel(r.Context()), s.degradeGrace)
}

// shouldDegrade reports whether a failed exact query is eligible for the
// Monte Carlo fallback: degradation is enabled, the measure is hetesim,
// and the failure was the deadline — not a client disconnect, where there
// is no one left to answer.
func (s *Server) shouldDegrade(q query, err error) bool {
	return s.degradeWalks > 0 && q.measure == "hetesim" && errors.Is(err, context.DeadlineExceeded)
}

type pairBody struct {
	Path        string        `json:"path"`
	Source      string        `json:"source"`
	Target      string        `json:"target"`
	Measure     string        `json:"measure"`
	Score       float64       `json:"score"`
	Approximate bool          `json:"approximate,omitempty"`
	Plan        *planInfoBody `json:"plan,omitempty"`
	Trace       *obs.Report   `json:"trace,omitempty"`
}

// planInfoBody reports which physical plan answered a hetesim query and
// what the optimizer estimated it would cost.
type planInfoBody struct {
	Kind     string  `json:"kind"`
	EstFlops float64 `json:"est_flops"`
	Forced   bool    `json:"forced,omitempty"`
	Reason   string  `json:"reason,omitempty"`
}

func planInfo(d core.PlanDecision) *planInfoBody {
	return &planInfoBody{Kind: string(d.Kind), EstFlops: d.Est.Flops, Forced: d.Forced, Reason: d.Reason}
}

// reactivePlanInfo describes the Monte Carlo fallback taken after an exact
// plan already blew its deadline mid-execution.
func reactivePlanInfo() *planInfoBody {
	return &planInfoBody{Kind: string(core.PlanMonteCarlo), Reason: "degraded after exact plan exceeded deadline"}
}

func (s *Server) handlePair(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	es := s.current()
	tr := obs.FromContext(ctx)
	sp := tr.Start("decode")
	q, err := s.decodeQuery(es, r)
	if err != nil {
		sp.End()
		writeError(w, err)
		return
	}
	target := r.URL.Query().Get("target")
	sp.End()
	if target == "" {
		writeError(w, fmt.Errorf("%w: missing target parameter", errBadRequest))
		return
	}
	var score float64
	var plan *planInfoBody
	approximate := false
	switch q.measure {
	case "hetesim":
		var src, dst int
		src, err = es.g.NodeIndex(q.path.Source(), q.source)
		if err == nil {
			dst, err = es.g.NodeIndex(q.path.Target(), target)
		}
		if err == nil {
			var d core.PlanDecision
			score, d, err = es.hetesim(q.raw).PairWithPlan(ctx, q.path, src, dst,
				core.PlanOptions{Force: q.plan, Walks: s.degradeWalks})
			if d.Kind != "" {
				plan = planInfo(d)
			}
			if err == nil && d.Approximate {
				approximate = true
				if !d.Forced {
					metDegraded.Inc() // proactive deadline-driven degrade
				}
			}
		}
	case "pcrw":
		score, err = es.pcrw.Pair(ctx, q.path, q.source, target)
	case "pathsim":
		score, err = es.pathsim.Pair(ctx, q.path, q.source, target)
	}
	if err != nil && s.shouldDegrade(q, err) {
		tr.Event("degrade", map[string]string{"reason": "deadline_exceeded"})
		score, err = s.degradedPair(es, r, q, target)
		approximate = err == nil
		if approximate {
			metDegraded.Inc()
			plan = reactivePlanInfo()
		}
	}
	if err != nil {
		writeError(w, err)
		return
	}
	body := pairBody{
		Path: q.path.String(), Source: q.source, Target: target,
		Measure: q.measure, Score: score, Approximate: approximate, Plan: plan,
	}
	if wantTrace(r) {
		body.Trace = tr.Report(tr.Elapsed())
	}
	writeJSON(w, http.StatusOK, body)
}

// degradedPair estimates a pair score from Monte Carlo walks after the
// exact plan blew its deadline.
func (s *Server) degradedPair(es *engineSet, r *http.Request, q query, target string) (float64, error) {
	src, err := es.g.NodeIndex(q.path.Source(), q.source)
	if err != nil {
		return 0, err
	}
	dst, err := es.g.NodeIndex(q.path.Target(), target)
	if err != nil {
		return 0, err
	}
	ctx, cancel := s.degradeCtx(r)
	defer cancel()
	res, err := es.hetesim(q.raw).PairMonteCarlo(ctx, q.path, src, dst, s.degradeWalks, 0)
	if err != nil {
		return 0, err
	}
	return res.Score, nil
}

type topKBody struct {
	Path        string        `json:"path"`
	Source      string        `json:"source"`
	Measure     string        `json:"measure"`
	Approximate bool          `json:"approximate,omitempty"`
	Plan        *planInfoBody `json:"plan,omitempty"`
	Results     []hitBody     `json:"results"`
	Trace       *obs.Report   `json:"trace,omitempty"`
}

type hitBody struct {
	ID    string  `json:"id"`
	Score float64 `json:"score"`
}

type explainBody struct {
	Path    string     `json:"path"`
	Queries int        `json:"queries"`
	Report  string     `json:"report"`
	Plans   []planBody `json:"plans"`
}

type planBody struct {
	Kind        string  `json:"kind"`
	Flops       float64 `json:"flops"`
	Materialize float64 `json:"materialize"`
	Description string  `json:"description"`
}

type whyBody struct {
	Path          string             `json:"path"`
	Source        string             `json:"source"`
	Target        string             `json:"target"`
	Score         float64            `json:"score"`
	Contributions []contributionBody `json:"contributions"`
}

type contributionBody struct {
	Label    string  `json:"label"`
	Value    float64 `json:"value"`
	Fraction float64 `json:"fraction"`
}

// handleWhy explains a pair's HeteSim score by its top meeting-object
// contributions.
func (s *Server) handleWhy(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	es := s.current()
	q, err := s.decodeQuery(es, r)
	if err != nil {
		writeError(w, err)
		return
	}
	if q.measure != "hetesim" {
		writeError(w, fmt.Errorf("%w: why applies only to hetesim", errBadRequest))
		return
	}
	target := r.URL.Query().Get("target")
	if target == "" {
		writeError(w, fmt.Errorf("%w: missing target parameter", errBadRequest))
		return
	}
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		k, err = strconv.Atoi(v)
		if err != nil || k <= 0 {
			writeError(w, fmt.Errorf("%w: k=%q", errBadRequest, v))
			return
		}
	}
	src, err := es.g.NodeIndex(q.path.Source(), q.source)
	if err != nil {
		writeError(w, err)
		return
	}
	dst, err := es.g.NodeIndex(q.path.Target(), target)
	if err != nil {
		writeError(w, err)
		return
	}
	score, contribs, err := es.hetesim(q.raw).PairContributions(ctx, q.path, src, dst, k)
	if err != nil {
		writeError(w, err)
		return
	}
	body := whyBody{Path: q.path.String(), Source: q.source, Target: target, Score: score}
	for _, c := range contribs {
		body.Contributions = append(body.Contributions, contributionBody{
			Label: c.Label, Value: c.Value, Fraction: c.Fraction,
		})
	}
	writeJSON(w, http.StatusOK, body)
}

// handleExplain exposes the HeteSim query planner: the estimated cost of
// every physical plan for a path, amortized over an expected query count.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	es := s.current()
	spec := r.URL.Query().Get("path")
	if spec == "" {
		writeError(w, fmt.Errorf("%w: missing path parameter", errBadRequest))
		return
	}
	p, err := metapath.Parse(es.g.Schema(), spec)
	if err != nil {
		writeError(w, err)
		return
	}
	queries := 1
	if v := r.URL.Query().Get("queries"); v != "" {
		queries, err = strconv.Atoi(v)
		if err != nil || queries < 1 {
			writeError(w, fmt.Errorf("%w: queries=%q", errBadRequest, v))
			return
		}
	}
	report, plans, err := es.engine.Explain(p, queries)
	if err != nil {
		writeError(w, err)
		return
	}
	body := explainBody{Path: p.String(), Queries: queries, Report: report}
	for _, pl := range plans {
		body.Plans = append(body.Plans, planBody{
			Kind: string(pl.Kind), Flops: pl.Flops,
			Materialize: pl.Materialize, Description: pl.Description,
		})
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	es := s.current()
	tr := obs.FromContext(ctx)
	sp := tr.Start("decode")
	q, err := s.decodeQuery(es, r)
	sp.End()
	if err != nil {
		writeError(w, err)
		return
	}
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		k, err = strconv.Atoi(v)
		if err != nil || k <= 0 {
			writeError(w, fmt.Errorf("%w: k=%q", errBadRequest, v))
			return
		}
	}
	var scores []float64
	var hits []hitBody
	var plan *planInfoBody
	approximate := false
	ranked := false
	switch q.measure {
	case "hetesim":
		// Top-k hetesim goes through the top-k planner, which can choose
		// the heap-pruned exact scan or — under a deadline or a forced
		// ?plan=topk-approx — the low-rank embedding candidate generator
		// with exact re-ranking.
		var src int
		src, err = es.g.NodeIndex(q.path.Source(), q.source)
		if err == nil {
			var d core.PlanDecision
			var top []core.Scored
			top, d, err = es.hetesim(q.raw).TopKSearchWithPlan(ctx, q.path, src, k, 0,
				core.PlanOptions{Force: q.plan, Walks: s.degradeWalks, ErrorBudget: q.errBudget})
			if d.Kind != "" {
				plan = planInfo(d)
			}
			if err == nil {
				hits = topKHits(es.g.NodeIDs(q.path.Target()), top, k)
				ranked = true
				if d.Approximate {
					approximate = true
					if !d.Forced {
						metDegraded.Inc() // proactive deadline-driven degrade
					}
				}
			}
		}
	case "pcrw":
		scores, err = es.pcrw.SingleSource(ctx, q.path, q.source)
	case "pathsim":
		scores, err = es.pathsim.SingleSource(ctx, q.path, q.source)
	}
	if err != nil && s.shouldDegrade(q, err) {
		tr.Event("degrade", map[string]string{"reason": "deadline_exceeded"})
		scores, err = s.degradedTopK(es, r, q)
		approximate = err == nil
		ranked = false
		if approximate {
			metDegraded.Inc()
			plan = reactivePlanInfo()
		}
	}
	if err != nil {
		writeError(w, err)
		return
	}
	if !ranked {
		sp = tr.Start("rank")
		items, rerr := rank.List(scores, es.g.NodeIDs(q.path.Target()), k)
		sp.End()
		if rerr != nil {
			writeError(w, rerr)
			return
		}
		hits = hits[:0]
		for _, it := range items {
			hits = append(hits, hitBody{ID: it.ID, Score: it.Score})
		}
	}
	body := topKBody{Path: q.path.String(), Source: q.source, Measure: q.measure, Approximate: approximate, Plan: plan}
	body.Results = append(body.Results, hits...)
	if wantTrace(r) {
		body.Trace = tr.Report(tr.Elapsed())
	}
	writeJSON(w, http.StatusOK, body)
}

// degradedTopK estimates single-source scores from Monte Carlo walks
// after the exact plan blew its deadline. The walk-frequency ranking
// approximates the reaching-distribution ordering, so the response is
// marked approximate.
func (s *Server) degradedTopK(es *engineSet, r *http.Request, q query) ([]float64, error) {
	src, err := es.g.NodeIndex(q.path.Source(), q.source)
	if err != nil {
		return nil, err
	}
	ctx, cancel := s.degradeCtx(r)
	defer cancel()
	return es.hetesim(q.raw).SingleSourceMonteCarlo(ctx, q.path, src, s.degradeWalks, 0)
}

// topKHits maps engine top-k results onto response hits. The engine drops
// zero scores while the dense ranker (rank.List) keeps them, so to preserve
// the response contract the tail is padded with zero-score targets in
// ascending index order — every target absent from the engine's result has
// a score of exactly zero.
func topKHits(ids []string, top []core.Scored, k int) []hitBody {
	if k > len(ids) {
		k = len(ids)
	}
	hits := make([]hitBody, 0, k)
	seen := make(map[int]bool, len(top))
	for _, t := range top {
		hits = append(hits, hitBody{ID: ids[t.Index], Score: t.Score})
		seen[t.Index] = true
	}
	for i := 0; len(hits) < k && i < len(ids); i++ {
		if !seen[i] {
			hits = append(hits, hitBody{ID: ids[i]})
		}
	}
	return hits
}
