package server

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"hetesim/internal/hin"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("conference", 'C')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("published_in", "paper", "conference")
	b := hin.NewBuilder(s)
	b.AddEdge("writes", "Tom", "p1")
	b.AddEdge("writes", "Tom", "p2")
	b.AddEdge("writes", "Mary", "p2")
	b.AddEdge("writes", "Mary", "p3")
	b.AddEdge("published_in", "p1", "KDD")
	b.AddEdge("published_in", "p2", "KDD")
	b.AddEdge("published_in", "p3", "SIGMOD")
	srv := New(b.MustBuild())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, wantStatus int, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s status = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	var body map[string]string
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &body)
	if body["status"] != "ok" {
		t.Errorf("health = %v", body)
	}
}

func TestSchemaAndStats(t *testing.T) {
	_, ts := testServer(t)
	var schema schemaBody
	getJSON(t, ts.URL+"/v1/schema", http.StatusOK, &schema)
	if len(schema.Types) != 3 || len(schema.Relations) != 2 {
		t.Fatalf("schema = %+v", schema)
	}
	if schema.Types[0].Name != "author" || schema.Types[0].Count != 2 {
		t.Errorf("author type = %+v", schema.Types[0])
	}
	if schema.Relations[0].Edges != 4 {
		t.Errorf("writes edges = %d, want 4", schema.Relations[0].Edges)
	}
	var stats map[string]any
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &stats)
	if stats["nodes"] != 7.0 || stats["edges"] != 7.0 {
		t.Errorf("stats = %v", stats)
	}
}

func TestPairQuery(t *testing.T) {
	_, ts := testServer(t)
	var body pairBody
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD", http.StatusOK, &body)
	if math.Abs(body.Score-1) > 1e-12 {
		t.Errorf("HeteSim(Tom,KDD) = %v, want 1", body.Score)
	}
	if body.Measure != "hetesim" || body.Path != "APC" {
		t.Errorf("pair body = %+v", body)
	}
	// Raw meeting probability (Example 2 shape: both papers in KDD).
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD&raw=true", http.StatusOK, &body)
	if math.Abs(body.Score-0.5) > 1e-12 {
		t.Errorf("raw score = %v, want 0.5", body.Score)
	}
	// PCRW is asymmetric: A→C reaches 1.0 for Tom.
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD&measure=pcrw", http.StatusOK, &body)
	if math.Abs(body.Score-1) > 1e-12 {
		t.Errorf("pcrw = %v, want 1", body.Score)
	}
	// PathSim on the symmetric APA path.
	getJSON(t, ts.URL+"/v1/pair?path=APA&source=Tom&target=Mary&measure=pathsim", http.StatusOK, &body)
	if math.Abs(body.Score-0.5) > 1e-12 {
		t.Errorf("pathsim = %v, want 0.5", body.Score)
	}
}

func TestTopKQuery(t *testing.T) {
	_, ts := testServer(t)
	var body topKBody
	getJSON(t, ts.URL+"/v1/topk?path=APC&source=Mary&k=2", http.StatusOK, &body)
	if len(body.Results) != 2 {
		t.Fatalf("results = %+v", body.Results)
	}
	// Mary has one paper in each conference, but SIGMOD's entire paper
	// set is hers (cosine 1/√2) while she shares KDD with Tom (cosine
	// 1/2), so SIGMOD leads.
	if body.Results[0].ID != "SIGMOD" {
		t.Errorf("top result = %+v", body.Results[0])
	}
	if !(body.Results[0].Score > body.Results[1].Score) {
		t.Errorf("scores not ordered: %+v", body.Results)
	}
	// Default k.
	getJSON(t, ts.URL+"/v1/topk?path=APC&source=Tom", http.StatusOK, &body)
	if len(body.Results) != 2 { // only two conferences exist
		t.Errorf("default-k results = %d", len(body.Results))
	}
}

func TestExplainEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var body explainBody
	getJSON(t, ts.URL+"/v1/explain?path=APC&queries=500", http.StatusOK, &body)
	if body.Path != "APC" || body.Queries != 500 {
		t.Errorf("explain = %+v", body)
	}
	if len(body.Plans) != 3 {
		t.Fatalf("plans = %d, want 3", len(body.Plans))
	}
	for i := 1; i < len(body.Plans); i++ {
		if body.Plans[i].Flops < body.Plans[i-1].Flops {
			t.Error("plans not cheapest-first")
		}
	}
	if body.Report == "" {
		t.Error("empty report")
	}
	var e errorBody
	getJSON(t, ts.URL+"/v1/explain", http.StatusBadRequest, &e)
	getJSON(t, ts.URL+"/v1/explain?path=APC&queries=0", http.StatusBadRequest, &e)
	getJSON(t, ts.URL+"/v1/explain?path=AXC", http.StatusBadRequest, &e)
}

func TestWhyEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var body whyBody
	getJSON(t, ts.URL+"/v1/why?path=APC&source=Tom&target=KDD&k=5", http.StatusOK, &body)
	if body.Score <= 0 || len(body.Contributions) != 2 {
		t.Fatalf("why = %+v", body)
	}
	var fracSum float64
	for _, c := range body.Contributions {
		if c.Label != "p1" && c.Label != "p2" {
			t.Errorf("unexpected meeting object %q", c.Label)
		}
		fracSum += c.Fraction
	}
	if math.Abs(fracSum-1) > 1e-9 {
		t.Errorf("fractions sum to %v", fracSum)
	}
	var e errorBody
	getJSON(t, ts.URL+"/v1/why?path=APC&source=Tom", http.StatusBadRequest, &e)
	getJSON(t, ts.URL+"/v1/why?path=APC&source=Tom&target=KDD&measure=pcrw", http.StatusBadRequest, &e)
	getJSON(t, ts.URL+"/v1/why?path=APC&source=Tom&target=KDD&k=0", http.StatusBadRequest, &e)
	getJSON(t, ts.URL+"/v1/why?path=APC&source=Nobody&target=KDD", http.StatusNotFound, &e)
}

func TestErrorMapping(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		url    string
		status int
	}{
		{"/v1/pair?path=APC&source=Tom", http.StatusBadRequest},             // missing target
		{"/v1/pair?source=Tom&target=KDD", http.StatusBadRequest},           // missing path
		{"/v1/pair?path=APC&target=KDD", http.StatusBadRequest},             // missing source
		{"/v1/pair?path=AXC&source=Tom&target=KDD", http.StatusBadRequest},  // bad path
		{"/v1/pair?path=APC&source=Nobody&target=KDD", http.StatusNotFound}, // unknown node
		{"/v1/pair?path=APC&source=Tom&target=ICML", http.StatusNotFound},   // unknown target
		{"/v1/pair?path=APC&source=Tom&target=KDD&measure=x", http.StatusBadRequest},
		{"/v1/pair?path=APC&source=Tom&target=KDD&measure=pcrw&raw=true", http.StatusBadRequest},
		{"/v1/pair?path=APC&source=Tom&target=KDD&raw=zzz", http.StatusBadRequest},
		{"/v1/topk?path=APC&source=Tom&k=0", http.StatusBadRequest},
		{"/v1/topk?path=APC&source=Tom&k=x", http.StatusBadRequest},
		{"/v1/pair?path=APC&source=Tom&target=KDD&measure=pathsim", http.StatusBadRequest}, // asymmetric path
	}
	for _, c := range cases {
		var e errorBody
		getJSON(t, ts.URL+c.url, c.status, &e)
		if e.Error == "" {
			t.Errorf("%s: empty error body", c.url)
		}
	}
}

func TestConcurrentRequests(t *testing.T) {
	_, ts := testServer(t)
	done := make(chan error, 16)
	for w := 0; w < 16; w++ {
		go func() {
			for i := 0; i < 20; i++ {
				resp, err := http.Get(ts.URL + "/v1/topk?path=APC&source=Tom")
				if err != nil {
					done <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 16; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
