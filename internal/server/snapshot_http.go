package server

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"net/http"
	"strconv"
	"time"

	"hetesim/internal/obs"
	"hetesim/internal/snapshot"
)

// Snapshot shipping: GET /v1/admin/snapshot streams the serving engines'
// chain cache in the same CRC-guarded format the on-disk snapshot uses, so
// a fresh replica can boot warm from a peer instead of rematerializing.
// EncodeChains sorts its sections, so the same cache state always encodes
// to the same bytes — which is what makes offset-based resumption sound: a
// client that lost the stream mid-body retries with ?offset=N and If-Match
// carrying the ETag it saw; if the cache advanced in between, the ETag no
// longer matches, the server answers 412, and the client restarts from 0
// rather than splicing bytes from two different snapshots.
var (
	metSnapshotStreams = obs.Default().Counter("hetesim_snapshot_stream_total",
		"Snapshot streams started over GET /v1/admin/snapshot.")
	metSnapshotResumes = obs.Default().Counter("hetesim_snapshot_stream_resume_total",
		"Snapshot streams resumed from a non-zero offset.")
)

// encodeSnapshot serializes the current engines' merged chain cache into
// the snapshot wire format, returning the bytes and the owning engine
// set's fingerprint.
func (s *Server) encodeSnapshot() ([]byte, uint64, error) {
	es := s.current()
	chains := es.engine.ExportChains()
	for k, m := range es.raw.ExportChains() {
		if _, ok := chains[k]; !ok {
			chains[k] = m
		}
	}
	snap := &snapshot.Snapshot{
		Fingerprint: es.fingerprint,
		PruneEps:    es.engine.PruneEps(),
	}
	if err := snapshot.EncodeChains(snap, chains); err != nil {
		return nil, 0, err
	}
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, snap); err != nil {
		return nil, 0, err
	}
	return buf.Bytes(), es.fingerprint, nil
}

// handleSnapshot is GET /v1/admin/snapshot: stream the chain cache,
// resumable. ?offset=N skips the first N bytes; If-Match must then carry
// the ETag of the stream being resumed (412 on mismatch — the cache moved
// on and the partial download is for a snapshot that no longer exists).
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	raw, fp, err := s.encodeSnapshot()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError,
			errorBody{Error: "encoding snapshot: " + err.Error(), Code: "snapshot_encode_failed"})
		return
	}
	etag := fmt.Sprintf("\"%016x-%08x\"", fp, crc32.ChecksumIEEE(raw))

	offset := int64(0)
	if v := r.URL.Query().Get("offset"); v != "" {
		offset, err = strconv.ParseInt(v, 10, 64)
		if err != nil || offset < 0 {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: "offset must be a non-negative integer", Code: "bad_request"})
			return
		}
	}
	if offset > 0 {
		if im := r.Header.Get("If-Match"); im != "" && im != etag {
			// The resume target is a different snapshot than the one the
			// client started downloading; splicing would corrupt it.
			w.Header().Set("ETag", etag)
			writeJSON(w, http.StatusPreconditionFailed,
				errorBody{Error: "snapshot changed since the interrupted download; restart from offset 0", Code: "snapshot_changed"})
			return
		}
		if offset > int64(len(raw)) {
			w.Header().Set("ETag", etag)
			writeJSON(w, http.StatusRequestedRangeNotSatisfiable,
				errorBody{Error: fmt.Sprintf("offset %d beyond snapshot size %d", offset, len(raw)), Code: "bad_offset"})
			return
		}
		metSnapshotResumes.Inc()
	}
	metSnapshotStreams.Inc()

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("ETag", etag)
	w.Header().Set("X-Hetesim-Fingerprint", fmt.Sprintf("%016x", fp))
	w.Header().Set("X-Hetesim-Snapshot-Size", strconv.Itoa(len(raw)))
	w.Header().Set("Content-Length", strconv.FormatInt(int64(len(raw))-offset, 10))
	w.WriteHeader(http.StatusOK)
	w.Write(raw[offset:])
}

// ImportSnapshot validates snap against the serving graph and imports its
// chain matrices into both engines — the receiving half of snapshot
// shipping, used by the -warm-from boot path. It returns how many chains
// were admitted; a snapshot for a different graph generation or pruning
// configuration is rejected whole.
func (s *Server) ImportSnapshot(snap *snapshot.Snapshot) (int, error) {
	es := s.current()
	if err := snap.CheckCompat(es.fingerprint, es.engine.PruneEps()); err != nil {
		metSnapshotCorrupt.Inc()
		return 0, err
	}
	chains, err := snapshot.DecodeChains(snap)
	if err != nil {
		metSnapshotCorrupt.Inc()
		return 0, err
	}
	n := es.engine.ImportChains(chains)
	es.raw.ImportChains(chains)
	metSnapshotLoads.Inc()
	if n > 0 {
		metWarmStart.Set(1)
		s.snapSavedAt.Store(time.Now().UnixNano())
	}
	return n, nil
}
