package server

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"hetesim/internal/hin"
)

func approxGraph(t *testing.T) *hin.Graph {
	t.Helper()
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("conference", 'C')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("published_in", "paper", "conference")
	b := hin.NewBuilder(s)
	b.AddEdge("writes", "Tom", "p1")
	b.AddEdge("writes", "Tom", "p2")
	b.AddEdge("writes", "Mary", "p2")
	b.AddEdge("writes", "Mary", "p3")
	b.AddEdge("writes", "Bob", "p3")
	b.AddEdge("writes", "Bob", "p4")
	b.AddEdge("published_in", "p1", "KDD")
	b.AddEdge("published_in", "p2", "KDD")
	b.AddEdge("published_in", "p3", "SIGMOD")
	b.AddEdge("published_in", "p4", "ICDM")
	return b.MustBuild()
}

// Forcing ?plan=topk-approx must report the plan as forced and
// approximate, and on a graph where the rank clamps to the full middle
// dimension its scores (and, at full rank, its ranking) are identical to
// the automatic exact plan — the re-rank runs the exact operators.
func TestTopKApproxForcedMatchesExact(t *testing.T) {
	srv := New(approxGraph(t))
	ts := serveHTTP(t, srv)

	var auto topKBody
	getJSON(t, ts.URL+"/v1/topk?path=APCPA&source=Tom&k=3", http.StatusOK, &auto)
	if auto.Plan == nil || auto.Plan.Kind == "topk-approx" {
		t.Fatalf("auto plan = %+v, expected an exact kind", auto.Plan)
	}
	if auto.Approximate {
		t.Fatal("auto topk reported approximate")
	}

	var body topKBody
	getJSON(t, ts.URL+"/v1/topk?path=APCPA&source=Tom&k=3&plan=topk-approx", http.StatusOK, &body)
	if body.Plan == nil || body.Plan.Kind != "topk-approx" || !body.Plan.Forced {
		t.Fatalf("forced plan = %+v, want forced topk-approx", body.Plan)
	}
	if !body.Approximate {
		t.Error("topk-approx response not marked approximate")
	}
	if len(body.Results) != len(auto.Results) {
		t.Fatalf("results = %+v, auto = %+v", body.Results, auto.Results)
	}
	for i := range body.Results {
		if body.Results[i] != auto.Results[i] {
			t.Errorf("result[%d] = %+v, auto = %+v (scores must be bit-identical)",
				i, body.Results[i], auto.Results[i])
		}
	}

	// The build is cached: a second forced query serves from the warm
	// embedding and still agrees.
	var again topKBody
	getJSON(t, ts.URL+"/v1/topk?path=APCPA&source=Tom&k=3&plan=topk-approx", http.StatusOK, &again)
	for i := range again.Results {
		if again.Results[i] != auto.Results[i] {
			t.Errorf("warm result[%d] = %+v, auto = %+v", i, again.Results[i], auto.Results[i])
		}
	}
	if n := srv.current().engine.EmbeddingCount(); n == 0 {
		t.Error("forced topk-approx query built no embedding")
	}
}

func serveHTTP(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestTopKErrorBudgetParam pins the knob's validation: a legal budget is
// accepted on hetesim topk, out-of-range and wrong-measure uses are 400s.
func TestTopKErrorBudgetParam(t *testing.T) {
	srv := New(approxGraph(t))
	ts := serveHTTP(t, srv)

	var body topKBody
	getJSON(t, ts.URL+"/v1/topk?path=APCPA&source=Tom&k=2&plan=topk-approx&error_budget=0.5", http.StatusOK, &body)
	if body.Plan == nil || body.Plan.Kind != "topk-approx" {
		t.Fatalf("plan = %+v", body.Plan)
	}

	var e errorBody
	getJSON(t, ts.URL+"/v1/topk?path=APCPA&source=Tom&error_budget=1.5", http.StatusBadRequest, &e)
	getJSON(t, ts.URL+"/v1/topk?path=APCPA&source=Tom&error_budget=0", http.StatusBadRequest, &e)
	getJSON(t, ts.URL+"/v1/topk?path=APCPA&source=Tom&error_budget=nope", http.StatusBadRequest, &e)
	getJSON(t, ts.URL+"/v1/topk?path=APCPA&source=Tom&measure=pcrw&error_budget=0.1", http.StatusBadRequest, &e)
}

// TestStatsReportsTopKErrorBudget: the configured default budget shows up
// in /v1/stats options so a stats snapshot is interpretable on its own.
func TestStatsReportsTopKErrorBudget(t *testing.T) {
	srv := New(approxGraph(t), WithTopKErrorBudget(0.1))
	ts := serveHTTP(t, srv)
	var stats struct {
		Options map[string]any `json:"options"`
	}
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &stats)
	if got, ok := stats.Options["topk_error_budget"].(float64); !ok || got != 0.1 {
		t.Fatalf("options[topk_error_budget] = %v, want 0.1", stats.Options["topk_error_budget"])
	}
}

// TestSnapshotPersistsEmbeddings: an embedding built by a forced
// topk-approx query survives SaveSnapshot and warms a second server, which
// then answers identically without rebuilding.
func TestSnapshotPersistsEmbeddings(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "chains.snap")

	first := New(approxGraph(t), WithSnapshotPath(snapPath), WithLogf(t.Logf))
	fts := serveHTTP(t, first)
	var want topKBody
	getJSON(t, fts.URL+"/v1/topk?path=APCPA&source=Tom&k=3&plan=topk-approx", http.StatusOK, &want)
	if first.current().engine.EmbeddingCount() == 0 {
		t.Fatal("no embedding built to persist")
	}
	if err := first.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}

	second := New(approxGraph(t), WithSnapshotPath(snapPath), WithLogf(t.Logf))
	warm, err := second.WarmStart()
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Fatal("warm start reported cold")
	}
	if second.current().engine.EmbeddingCount() == 0 {
		t.Fatal("warm start restored no embeddings")
	}
	sts := serveHTTP(t, second)
	var got topKBody
	getJSON(t, sts.URL+"/v1/topk?path=APCPA&source=Tom&k=3&plan=topk-approx", http.StatusOK, &got)
	if len(got.Results) != len(want.Results) {
		t.Fatalf("warm results = %+v, want %+v", got.Results, want.Results)
	}
	for i := range got.Results {
		if got.Results[i] != want.Results[i] {
			t.Errorf("warm result[%d] = %+v, want %+v", i, got.Results[i], want.Results[i])
		}
	}
}
