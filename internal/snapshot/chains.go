package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"hetesim/internal/sparse"
)

// The chains codec maps an engine's materialized chain-matrix cache — the
// reachable-probability matrices PM_P of Definition 9, keyed by the chain
// cache key — onto snapshot sections named "chain:<key>".

const chainPrefix = "chain:"

// EncodeChains appends one section per chain matrix, in sorted key order so
// identical caches produce byte-identical snapshots.
func EncodeChains(s *Snapshot, chains map[string]*sparse.Matrix) error {
	keys := make([]string, 0, len(chains))
	for k := range chains {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		var buf bytes.Buffer
		if err := sparse.WriteMatrix(&buf, chains[k]); err != nil {
			return fmt.Errorf("snapshot: encoding chain %q: %w", k, err)
		}
		s.Sections = append(s.Sections, Section{Name: chainPrefix + k, Data: buf.Bytes()})
	}
	return nil
}

// DecodeChains extracts every chain section back into a key → matrix map.
// Sections with other names are ignored, so the format can grow new section
// kinds without breaking old readers of the chains.
func DecodeChains(s *Snapshot) (map[string]*sparse.Matrix, error) {
	chains := make(map[string]*sparse.Matrix)
	for _, sec := range s.Sections {
		key, ok := strings.CutPrefix(sec.Name, chainPrefix)
		if !ok {
			continue
		}
		m, err := decodeMatrix(sec.Data)
		if err != nil {
			return nil, fmt.Errorf("%w: chain %q: %v", ErrCorrupt, key, err)
		}
		chains[key] = m
	}
	return chains, nil
}

// decodeMatrix parses one serialized sparse matrix, first checking that the
// declared dimensions account for exactly the bytes present. The check
// rejects a payload whose header promises billions of entries before any
// proportional allocation happens — the length-prefix cap the snapshot
// fuzzer locks in.
func decodeMatrix(data []byte) (*sparse.Matrix, error) {
	// Matrix layout: magic(4) version(4) rows(8) cols(8) nnz(8) then
	// rowPtr (rows+1)×8, colIdx nnz×8, val nnz×8.
	const headerLen = 4 + 4 + 8*3
	if len(data) < headerLen {
		return nil, fmt.Errorf("payload of %d bytes is shorter than a matrix header", len(data))
	}
	rows := binary.LittleEndian.Uint64(data[8:16])
	nnz := binary.LittleEndian.Uint64(data[24:32])
	want := uint64(headerLen) + (rows+1)*8 + nnz*16
	if rows > maxSectionData/8 || nnz > maxSectionData/16 || uint64(len(data)) != want {
		return nil, fmt.Errorf("payload is %d bytes, header declares %d (rows=%d nnz=%d)",
			len(data), want, rows, nnz)
	}
	return sparse.ReadMatrix(bytes.NewReader(data))
}
