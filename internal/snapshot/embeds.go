package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"

	"hetesim/internal/embed"
	"hetesim/internal/linalg"
)

// The embeddings codec maps an engine's low-rank chain embeddings (the
// topk-approx factorizations of internal/embed) onto snapshot sections
// named "embed:<key>". Introduced with format version 2; version-1 readers
// never see the sections, and version-1 files simply decode to an empty
// embedding map — embeddings rebuild lazily, they are a cache, not truth.
//
// Payload layout (little-endian):
//
//	magic "HEMB" | rank u32 | dim u64 | rows u64 |
//	basis dim×rank f64 (row-major) | vecs rows×rank f64 (row-major)

const embedPrefix = "embed:"

var embedMagic = [4]byte{'H', 'E', 'M', 'B'}

const embedHeaderLen = 4 + 4 + 8 + 8

// EncodeEmbeddings appends one section per embedding, in sorted key order
// so identical caches produce byte-identical snapshots.
func EncodeEmbeddings(s *Snapshot, embeds map[string]*embed.Embedding) error {
	keys := make([]string, 0, len(embeds))
	for k := range embeds {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		data, err := encodeEmbedding(embeds[k])
		if err != nil {
			return fmt.Errorf("snapshot: encoding embedding %q: %w", k, err)
		}
		s.Sections = append(s.Sections, Section{Name: embedPrefix + k, Data: data})
	}
	return nil
}

// DecodeEmbeddings extracts every embedding section back into a key →
// embedding map. Sections with other names are ignored, mirroring
// DecodeChains.
func DecodeEmbeddings(s *Snapshot) (map[string]*embed.Embedding, error) {
	out := make(map[string]*embed.Embedding)
	for _, sec := range s.Sections {
		key, ok := strings.CutPrefix(sec.Name, embedPrefix)
		if !ok {
			continue
		}
		e, err := decodeEmbedding(sec.Data)
		if err != nil {
			return nil, fmt.Errorf("%w: embedding %q: %v", ErrCorrupt, key, err)
		}
		out[key] = e
	}
	return out, nil
}

func encodeEmbedding(e *embed.Embedding) ([]byte, error) {
	if e == nil || e.Basis == nil {
		return nil, fmt.Errorf("nil embedding")
	}
	br, bc := e.Basis.Dims()
	if br != e.Dim || bc != e.Rank || len(e.Vecs) != e.Rows*e.Rank {
		return nil, fmt.Errorf("inconsistent shape: basis %dx%d, dim=%d rank=%d rows=%d vecs=%d",
			br, bc, e.Dim, e.Rank, e.Rows, len(e.Vecs))
	}
	var buf bytes.Buffer
	buf.Write(embedMagic[:])
	binary.Write(&buf, binary.LittleEndian, uint32(e.Rank))
	binary.Write(&buf, binary.LittleEndian, uint64(e.Dim))
	binary.Write(&buf, binary.LittleEndian, uint64(e.Rows))
	var scratch [8]byte
	writeF64 := func(v float64) {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
		buf.Write(scratch[:])
	}
	for i := 0; i < e.Dim; i++ {
		for _, v := range e.Basis.Row(i) {
			writeF64(v)
		}
	}
	for _, v := range e.Vecs {
		writeF64(v)
	}
	return buf.Bytes(), nil
}

// decodeEmbedding parses one serialized embedding, first checking that the
// declared shape accounts for exactly the bytes present, so a header that
// promises billions of floats is rejected before any proportional
// allocation happens — the same length-prefix discipline as decodeMatrix.
func decodeEmbedding(data []byte) (*embed.Embedding, error) {
	if len(data) < embedHeaderLen {
		return nil, fmt.Errorf("payload of %d bytes is shorter than an embedding header", len(data))
	}
	if !bytes.Equal(data[:4], embedMagic[:]) {
		return nil, fmt.Errorf("embedding magic %q", data[:4])
	}
	rank := uint64(binary.LittleEndian.Uint32(data[4:8]))
	dim := binary.LittleEndian.Uint64(data[8:16])
	rows := binary.LittleEndian.Uint64(data[16:24])
	if rank == 0 || rank > dim {
		return nil, fmt.Errorf("rank %d outside [1,%d]", rank, dim)
	}
	if dim > maxSectionData/8 || rows > maxSectionData/8 ||
		dim*rank > maxSectionData/8 || rows*rank > maxSectionData/8 {
		return nil, fmt.Errorf("implausible shape rank=%d dim=%d rows=%d", rank, dim, rows)
	}
	want := uint64(embedHeaderLen) + (dim*rank+rows*rank)*8
	if uint64(len(data)) != want {
		return nil, fmt.Errorf("payload is %d bytes, header declares %d (rank=%d dim=%d rows=%d)",
			len(data), want, rank, dim, rows)
	}
	off := embedHeaderLen
	readF64 := func() float64 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[off : off+8]))
		off += 8
		return v
	}
	e := &embed.Embedding{
		Rank:  int(rank),
		Dim:   int(dim),
		Rows:  int(rows),
		Basis: linalg.NewDense(int(dim), int(rank)),
	}
	for i := 0; i < e.Dim; i++ {
		row := e.Basis.Row(i)
		for j := range row {
			row[j] = readF64()
		}
	}
	e.Vecs = make([]float64, e.Rows*e.Rank)
	for i := range e.Vecs {
		e.Vecs[i] = readF64()
	}
	return e, nil
}
