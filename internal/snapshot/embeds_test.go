package snapshot

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"hetesim/internal/embed"
	"hetesim/internal/sparse"
)

func buildEmbedding(t testing.TB, seed int64) *embed.Embedding {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var tr []sparse.Triplet
	for i := 0; i < 30; i++ {
		for k := 0; k < 1+rng.Intn(3); k++ {
			tr = append(tr, sparse.Triplet{Row: i, Col: rng.Intn(8), Val: rng.Float64()})
		}
	}
	em, err := embed.Build(context.Background(), sparse.New(30, 8, tr), 4, seed, 20)
	if err != nil {
		t.Fatal(err)
	}
	return em
}

func TestEmbeddingsRoundTrip(t *testing.T) {
	em := buildEmbedding(t, 3)
	s := &Snapshot{Fingerprint: 7, PruneEps: 0}
	if err := EncodeEmbeddings(s, map[string]*embed.Embedding{"E:4:C:writes": em}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	embeds, err := DecodeEmbeddings(got)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := embeds["E:4:C:writes"]
	if !ok {
		t.Fatalf("embedding key missing, have %d sections", len(got.Sections))
	}
	if out.Rank != em.Rank || out.Dim != em.Dim || out.Rows != em.Rows {
		t.Fatalf("shape %d/%d/%d, want %d/%d/%d", out.Rank, out.Dim, out.Rows, em.Rank, em.Dim, em.Rows)
	}
	for i, v := range em.Vecs {
		if out.Vecs[i] != v {
			t.Fatalf("vec %d = %v, want bit-identical %v", i, out.Vecs[i], v)
		}
	}
	for i := 0; i < em.Dim; i++ {
		for j := 0; j < em.Rank; j++ {
			if out.Basis.At(i, j) != em.Basis.At(i, j) {
				t.Fatalf("basis (%d,%d) not bit-identical", i, j)
			}
		}
	}
}

// A version-1 snapshot (no embedding sections) must still load under the
// version-2 reader: chains decode, embeddings come back empty — they are a
// cache and rebuild lazily, an old snapshot is not an error.
func TestOldVersionSnapshotStillLoads(t *testing.T) {
	s := &Snapshot{Fingerprint: 11, PruneEps: 0, version: 1}
	if err := EncodeChains(s, map[string]*sparse.Matrix{
		"C:w": sparse.New(2, 2, []sparse.Triplet{{Row: 1, Col: 0, Val: 0.5}}),
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[4]; got != 1 {
		t.Fatalf("written version byte = %d, want 1", got)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("version-1 snapshot rejected: %v", err)
	}
	chains, err := DecodeChains(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 1 {
		t.Fatalf("chains = %d, want 1", len(chains))
	}
	embeds, err := DecodeEmbeddings(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(embeds) != 0 {
		t.Fatalf("embeds = %d, want 0", len(embeds))
	}
	// Round trip stays canonical at the original version.
	var again bytes.Buffer
	if err := Write(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), buf.Bytes()) {
		t.Fatal("version-1 snapshot did not round-trip byte-identically")
	}
}

func TestFutureVersionRejected(t *testing.T) {
	s := &Snapshot{version: Version + 1}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestDecodeEmbeddingRejectsCorruptPayloads(t *testing.T) {
	em := buildEmbedding(t, 9)
	good, err := encodeEmbedding(em)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     good[:embedHeaderLen-1],
		"bad magic": append([]byte("XXXX"), good[4:]...),
		"truncated": good[:len(good)-8],
		"extended":  append(append([]byte(nil), good...), 0),
	}
	shapeBomb := append([]byte(nil), good...)
	for i := 8; i < 24; i++ {
		shapeBomb[i] = 0xff
	}
	cases["shape bomb"] = shapeBomb
	zeroRank := append([]byte(nil), good...)
	zeroRank[4], zeroRank[5], zeroRank[6], zeroRank[7] = 0, 0, 0, 0
	cases["zero rank"] = zeroRank
	for name, data := range cases {
		if _, err := decodeEmbedding(data); err == nil {
			t.Errorf("%s payload accepted", name)
		}
	}
	s := &Snapshot{Sections: []Section{{Name: embedPrefix + "E:4:C:w", Data: good[:10]}}}
	if _, err := DecodeEmbeddings(s); err == nil {
		t.Error("DecodeEmbeddings accepted a corrupt section")
	}
}
