package snapshot

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// FS is the narrow filesystem surface Save and Load need. Production code
// uses OS (the real filesystem); the chaos package provides an
// implementation that injects write failures, torn renames, and failed
// syncs at chosen points, which is how the recovery test matrix proves the
// crash-safety of the save protocol.
type FS interface {
	CreateTemp(dir, pattern string) (File, error)
	Open(name string) (File, error)
	// OpenAppend opens name for append-only writing, creating it empty when
	// absent — the write-ahead log's durability primitive.
	OpenAppend(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// Truncate shortens the file at name to size bytes, discarding a torn
	// tail detected during log replay.
	Truncate(name string, size int64) error
	// SyncDir flushes the directory entry metadata, making a completed
	// rename durable.
	SyncDir(dir string) error
}

// File is the subset of *os.File the save/load protocol uses.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Name() string
}

// OS is the real-filesystem FS.
type OS struct{}

func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (OS) Open(name string) (File, error) { return os.Open(name) }

func (OS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(name string) error { return os.Remove(name) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Sync on a directory is unsupported on some platforms; the rename
	// itself is still atomic there, so only real sync failures count.
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Save writes the snapshot crash-safely to path via fsys: serialize into a
// temp file in the destination directory, fsync it, close, atomically
// rename over path, and fsync the directory. A failure at any step removes
// the temp file and leaves whatever was previously at path untouched, so a
// crashed or failed save never costs the reader its last good snapshot.
func Save(fsys FS, path string, s *Snapshot) (err error) {
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("snapshot: creating temp file: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			fsys.Remove(tmp)
		}
	}()
	if err = Write(f, s); err != nil {
		f.Close()
		return fmt.Errorf("snapshot: writing %s: %w", tmp, err)
	}
	if err = f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("snapshot: syncing %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("snapshot: closing %s: %w", tmp, err)
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("snapshot: renaming into place: %w", err)
	}
	if err = fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("snapshot: syncing directory: %w", err)
	}
	return nil
}

// Load reads and validates the snapshot at path via fsys. It returns
// os.ErrNotExist (wrapped) when no snapshot exists — the ordinary cold
// start — and ErrCorrupt / ErrMismatch wrapped errors for files that must
// not be served.
func Load(fsys FS, path string) (*Snapshot, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	return s, nil
}
