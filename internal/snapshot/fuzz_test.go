package snapshot

import (
	"bytes"
	"context"
	"testing"

	"hetesim/internal/embed"
	"hetesim/internal/sparse"
)

// FuzzSnapshotDecode proves the snapshot reader never panics and never
// over-allocates on arbitrary bytes: length prefixes are capped and data is
// read incrementally, so memory tracks the input size, not the headers'
// claims. Anything Read accepts must round-trip byte-identically through
// Write, and its chain sections must decode without panicking.
func FuzzSnapshotDecode(f *testing.F) {
	// Seed with a real snapshot (including a chain matrix), an empty one,
	// and adversarial variants: truncations, a flipped version, a section
	// count far beyond the data, and a huge section length prefix.
	full := &Snapshot{Fingerprint: 42, PruneEps: 1e-4}
	if err := EncodeChains(full, map[string]*sparse.Matrix{
		"C:w": sparse.New(2, 3, []sparse.Triplet{{Row: 0, Col: 2, Val: 0.5}}),
	}); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, full); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("HSNP"))
	var empty bytes.Buffer
	if err := Write(&empty, &Snapshot{}); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	verFlip := append([]byte(nil), valid...)
	verFlip[4] = 9
	f.Add(verFlip)
	countBomb := append([]byte(nil), valid...)
	countBomb[24], countBomb[25], countBomb[26], countBomb[27] = 0xff, 0xff, 0xff, 0xff
	f.Add(countBomb)
	lenBomb := append([]byte(nil), valid...)
	if len(lenBomb) > 40 {
		for i := 34; i < 42 && i < len(lenBomb); i++ {
			lenBomb[i] = 0xff
		}
	}
	f.Add(lenBomb)
	// Version-2 seeds: a snapshot carrying an embedding section alongside
	// a chain, the same bytes with the header downgraded to version 1 (CRC
	// breaks, must be rejected), and an embedding shape bomb.
	withEmbed := &Snapshot{Fingerprint: 42, PruneEps: 1e-4}
	if err := EncodeChains(withEmbed, map[string]*sparse.Matrix{
		"C:w": sparse.New(2, 3, []sparse.Triplet{{Row: 0, Col: 2, Val: 0.5}}),
	}); err != nil {
		f.Fatal(err)
	}
	em, err := embed.Build(context.Background(),
		sparse.New(3, 2, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}, {Row: 2, Col: 1, Val: 0.25}}), 2, 7, 10)
	if err != nil {
		f.Fatal(err)
	}
	if err := EncodeEmbeddings(withEmbed, map[string]*embed.Embedding{"E:2:C:w": em}); err != nil {
		f.Fatal(err)
	}
	var ebuf bytes.Buffer
	if err := Write(&ebuf, withEmbed); err != nil {
		f.Fatal(err)
	}
	evalid := ebuf.Bytes()
	f.Add(evalid)
	f.Add(evalid[:len(evalid)/2])
	downgrade := append([]byte(nil), evalid...)
	downgrade[4] = 1
	f.Add(downgrade)
	shapeBomb := append([]byte(nil), evalid...)
	if off := bytes.Index(shapeBomb, embedMagic[:]); off >= 0 {
		for i := off + 8; i < off+24 && i < len(shapeBomb); i++ {
			shapeBomb[i] = 0xff
		}
	}
	f.Add(shapeBomb)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, s); err != nil {
			t.Fatalf("accepted snapshot does not re-serialize: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("accepted snapshot is not canonical: %d bytes in, %d out", len(data), out.Len())
		}
		// Chain and embedding decoding must be total: reject or return,
		// never panic.
		if _, err := DecodeChains(s); err != nil {
			return
		}
		if _, err := DecodeEmbeddings(s); err != nil {
			return
		}
	})
}
