// The recovery test matrix: every injected failure of the save protocol —
// kill mid-write at any byte, ENOSPC, failed fsync, torn rename, failed
// temp creation, at-rest corruption — must leave the previous snapshot
// loadable (or, with no previous snapshot, a clean cold start), and no
// failure may ever yield a snapshot that passes validation with wrong
// contents. The package under test is exercised from outside (package
// snapshot_test) so the matrix can drive it through the chaos FS.
package snapshot_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"hetesim/internal/chaos"
	"hetesim/internal/snapshot"
)

func matrixSnapshot(tag byte) *snapshot.Snapshot {
	return &snapshot.Snapshot{
		Fingerprint: 0x1111111111111111 * uint64(tag),
		Sections: []snapshot.Section{
			{Name: "meta", Data: bytes.Repeat([]byte{tag}, 64)},
			{Name: "chain:C:k", Data: bytes.Repeat([]byte{tag, ^tag}, 200)},
			// A version-2 embedding section, so every kill/corruption
			// sweep below also walks offsets inside the new section kind.
			{Name: "embed:E:4:C:k", Data: bytes.Repeat([]byte{tag, ^tag, 0x3f}, 120)},
		},
	}
}

// mustLoadTag asserts the snapshot at path is intact and carries tag's
// fingerprint — i.e. the failure left the previous generation untouched.
func mustLoadTag(t *testing.T, path string, tag byte) {
	t.Helper()
	s, err := snapshot.Load(snapshot.OS{}, path)
	if err != nil {
		t.Fatalf("previous snapshot unloadable after injected failure: %v", err)
	}
	if want := 0x1111111111111111 * uint64(tag); s.Fingerprint != want {
		t.Fatalf("snapshot fingerprint %x, want generation %x", s.Fingerprint, want)
	}
}

// snapshotSize measures the serialized size of a snapshot, so write-failure
// sweeps can cover every byte offset of the save.
func snapshotSize(t *testing.T, s *snapshot.Snapshot) int64 {
	t.Helper()
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	return int64(buf.Len())
}

// TestKillMidWriteEveryOffset kills the save at every byte offset of the
// file being written. Whatever the offset, the save must fail and the
// previous snapshot must remain loadable.
func TestKillMidWriteEveryOffset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	v1, v2 := matrixSnapshot(1), matrixSnapshot(2)
	if err := snapshot.Save(snapshot.OS{}, path, v1); err != nil {
		t.Fatal(err)
	}
	size := snapshotSize(t, v2)
	fs := chaos.NewFS()
	for off := int64(0); off < size; off++ {
		fs.FailWriteAt(off, nil)
		if err := snapshot.Save(fs, path, v2); err == nil {
			t.Fatalf("save survived write failure at byte %d", off)
		}
		mustLoadTag(t, path, 1)
	}
	// Disarmed, the same save goes through and v2 becomes current.
	fs.DisarmAll()
	if err := snapshot.Save(fs, path, v2); err != nil {
		t.Fatal(err)
	}
	mustLoadTag(t, path, 2)
}

// TestENOSPC models the disk filling up mid-save with the real errno.
func TestENOSPC(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if err := snapshot.Save(snapshot.OS{}, path, matrixSnapshot(1)); err != nil {
		t.Fatal(err)
	}
	fs := chaos.NewFS()
	fs.FailWriteAt(100, syscall.ENOSPC)
	err := snapshot.Save(fs, path, matrixSnapshot(2))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("save error = %v, want ENOSPC", err)
	}
	mustLoadTag(t, path, 1)
}

// TestTornRename fails the publish step: the new file is fully written but
// never renamed into place. The previous snapshot stays current and no temp
// litter is left behind.
func TestTornRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if err := snapshot.Save(snapshot.OS{}, path, matrixSnapshot(1)); err != nil {
		t.Fatal(err)
	}
	fs := chaos.NewFS()
	fs.FailRename(nil)
	if err := snapshot.Save(fs, path, matrixSnapshot(2)); err == nil {
		t.Fatal("save survived a failed rename")
	}
	mustLoadTag(t, path, 1)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("failed rename left %d directory entries, want 1", len(entries))
	}
}

// TestFailedSyncAndCreate covers the remaining protocol steps: a failed
// fsync (data not durable — must not publish) and a failed temp creation.
func TestFailedSyncAndCreate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if err := snapshot.Save(snapshot.OS{}, path, matrixSnapshot(1)); err != nil {
		t.Fatal(err)
	}
	fs := chaos.NewFS()
	fs.FailSync(nil)
	if err := snapshot.Save(fs, path, matrixSnapshot(2)); err == nil {
		t.Fatal("save survived a failed fsync")
	}
	mustLoadTag(t, path, 1)

	fs.DisarmAll()
	fs.FailCreate(nil)
	if err := snapshot.Save(fs, path, matrixSnapshot(2)); err == nil {
		t.Fatal("save survived failed temp creation")
	}
	mustLoadTag(t, path, 1)
}

// TestAtRestCorruptionSweep flips bits at seeded offsets of the stored file
// (plus truncations) and proves Load rejects every mutation — bit rot is
// detected, never served. Short mode samples fewer offsets.
func TestAtRestCorruptionSweep(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if err := snapshot.Save(snapshot.OS{}, path, matrixSnapshot(3)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n := 64
	if testing.Short() {
		n = 16
	}
	for _, off := range chaos.Offsets(42, int64(len(raw)), n) {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x10
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := snapshot.Load(snapshot.OS{}, path); err == nil {
			t.Fatalf("bit flip at offset %d of the stored file was accepted", off)
		}
	}
	for _, off := range chaos.Offsets(43, int64(len(raw)), n) {
		if err := os.WriteFile(path, raw[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := snapshot.Load(snapshot.OS{}, path); err == nil {
			t.Fatalf("truncation to %d bytes was accepted", off)
		}
	}
}

// TestFirstSaveFailureMeansCleanColdStart: with no previous snapshot, a
// failed first save must leave nothing at the path — the next boot sees
// not-exist (cold start), not a corrupt file.
func TestFirstSaveFailureMeansCleanColdStart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	fs := chaos.NewFS()
	fs.FailWriteAt(37, nil)
	if err := snapshot.Save(fs, path, matrixSnapshot(1)); err == nil {
		t.Fatal("save survived write failure")
	}
	if _, err := snapshot.Load(snapshot.OS{}, path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("after failed first save, Load err = %v, want ErrNotExist", err)
	}
}

// TestReaderFaultWrappers drives Load through failing and short readers to
// pin decoder behavior on I/O errors and silent truncation.
func TestReaderFaultWrappers(t *testing.T) {
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, matrixSnapshot(1)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, off := range chaos.Offsets(7, int64(len(raw)), 24) {
		if _, err := snapshot.Read(chaos.FailReader(bytes.NewReader(raw), off, nil)); err == nil {
			t.Fatalf("read survived I/O failure at byte %d", off)
		}
		if _, err := snapshot.Read(chaos.ShortReader(bytes.NewReader(raw), off)); err == nil {
			t.Fatalf("read survived silent truncation at byte %d", off)
		}
		if _, err := snapshot.Read(chaos.CorruptReader(bytes.NewReader(raw), off, 0x40)); err == nil {
			t.Fatalf("read survived in-flight bit flip at byte %d", off)
		}
	}
}
