// Package snapshot implements the durable, verifiable on-disk state that
// lets hetesimd warm-start: a versioned, checksummed binary container for
// the engine's materialized chain matrices (the reachable-probability
// matrices PM_P of Definition 9 that Section 4.6 materializes offline)
// keyed to a fingerprint of the graph that produced them.
//
// The format is defensive by construction. Every region of the file is
// covered by a CRC — the fixed header by a header CRC, each section by a
// per-section CRC, and the whole byte stream by a trailing file CRC behind
// a closing magic — so truncation, bit flips, and torn writes are detected
// no matter where they land. A snapshot that fails any check is rejected
// with a reason wrapped around ErrCorrupt; callers fall back to cold
// recomputation and never serve from a bad snapshot.
//
// Layout (little-endian):
//
//	header   magic "HSNP" | version u32 | fingerprint u64 | pruneEps f64 |
//	         sectionCount u32 | headerCRC u32 (CRC-32/IEEE of the 28 bytes above)
//	section  nameLen u16 | name | dataLen u64 | data |
//	         sectionCRC u32 (CRC-32/IEEE of name and data bytes)
//	footer   magic "PNSH" | fileCRC u32 (CRC-32/IEEE of every preceding byte)
//
// Writing the file is the snapshot package's other half: Save writes to a
// temp file in the destination directory, fsyncs it, atomically renames it
// over the target, and fsyncs the directory, so a crash at any byte leaves
// either the old snapshot or the new one — never a half-written file that
// passes validation.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// ErrCorrupt marks a snapshot that failed structural validation: bad magic,
// truncated stream, CRC mismatch, or an implausible length prefix.
var ErrCorrupt = errors.New("snapshot: corrupt")

// ErrMismatch marks a structurally valid snapshot that belongs to different
// state: wrong format version, wrong graph fingerprint, or engine options
// that change matrix contents (pruning epsilon).
var ErrMismatch = errors.New("snapshot: mismatch")

var (
	headerMagic = [4]byte{'H', 'S', 'N', 'P'}
	footerMagic = [4]byte{'P', 'N', 'S', 'H'}
)

// Version is the current snapshot format version. Version 2 added
// embedding sections ("embed:<key>") for the topk-approx plan; version-1
// files remain readable (they simply carry no embeddings, which rebuild
// lazily).
const Version = 2

// minVersion is the oldest format version Read still accepts.
const minVersion = 1

const (
	maxSections    = 1 << 20 // sanity cap on the section count prefix
	maxSectionData = 1 << 40 // sanity cap on a section's length prefix
	copyChunk      = 1 << 20 // incremental read granularity for section data
)

// Section is one named, independently checksummed payload. The snapshot
// layer treats payloads as opaque bytes; the chains codec in this package
// maps them to sparse matrices.
type Section struct {
	Name string
	Data []byte
}

// Snapshot is the in-memory form of a snapshot file: identification of the
// state it belongs to, plus its sections.
type Snapshot struct {
	Fingerprint uint64  // hin.Graph.Fingerprint of the producing graph
	PruneEps    float64 // core.WithPruning epsilon the matrices were built with
	Sections    []Section

	// version is the format version the snapshot was read with; Write
	// re-serializes at the same version so Read→Write round-trips are
	// byte-identical across format revisions. Zero (a freshly built
	// snapshot) writes the current Version.
	version uint32
}

// CheckCompat reports whether the snapshot belongs to the given graph
// fingerprint and pruning epsilon, with a reason when it does not. Version
// compatibility is already enforced by Read.
func (s *Snapshot) CheckCompat(fingerprint uint64, pruneEps float64) error {
	if s.Fingerprint != fingerprint {
		return fmt.Errorf("%w: snapshot is for graph fingerprint %016x, not %016x",
			ErrMismatch, s.Fingerprint, fingerprint)
	}
	if s.PruneEps != pruneEps {
		return fmt.Errorf("%w: snapshot was built with pruning eps %g, engine uses %g",
			ErrMismatch, s.PruneEps, pruneEps)
	}
	return nil
}

// Write serializes the snapshot to w in the checksummed binary format.
func Write(w io.Writer, s *Snapshot) error {
	if len(s.Sections) > maxSections {
		return fmt.Errorf("snapshot: %d sections exceeds the format cap %d", len(s.Sections), maxSections)
	}
	fileCRC := crc32.NewIEEE()
	out := io.MultiWriter(w, fileCRC)

	ver := s.version
	if ver == 0 {
		ver = Version
	}
	var hdr bytes.Buffer
	hdr.Write(headerMagic[:])
	binary.Write(&hdr, binary.LittleEndian, ver)
	binary.Write(&hdr, binary.LittleEndian, s.Fingerprint)
	binary.Write(&hdr, binary.LittleEndian, s.PruneEps)
	binary.Write(&hdr, binary.LittleEndian, uint32(len(s.Sections)))
	binary.Write(&hdr, binary.LittleEndian, crc32.ChecksumIEEE(hdr.Bytes()))
	if _, err := out.Write(hdr.Bytes()); err != nil {
		return err
	}

	for _, sec := range s.Sections {
		if len(sec.Name) > 1<<16-1 {
			return fmt.Errorf("snapshot: section name %q longer than 64 KiB", sec.Name[:64])
		}
		if uint64(len(sec.Data)) > maxSectionData {
			return fmt.Errorf("snapshot: section %q data exceeds the format cap", sec.Name)
		}
		if err := binary.Write(out, binary.LittleEndian, uint16(len(sec.Name))); err != nil {
			return err
		}
		if _, err := io.WriteString(out, sec.Name); err != nil {
			return err
		}
		if err := binary.Write(out, binary.LittleEndian, uint64(len(sec.Data))); err != nil {
			return err
		}
		if _, err := out.Write(sec.Data); err != nil {
			return err
		}
		crc := crc32.NewIEEE()
		crc.Write([]byte(sec.Name))
		crc.Write(sec.Data)
		if err := binary.Write(out, binary.LittleEndian, crc.Sum32()); err != nil {
			return err
		}
	}

	if _, err := out.Write(footerMagic[:]); err != nil {
		return err
	}
	// The footer magic is covered by the file CRC; the CRC itself is not.
	return binary.Write(w, binary.LittleEndian, fileCRC.Sum32())
}

// Read parses and fully validates a snapshot from r: header magic, version,
// header CRC, every section CRC, the footer magic, and the whole-file CRC.
// Length prefixes are capped and section data is read incrementally, so a
// hostile or corrupted stream can never force an allocation much larger
// than the bytes it actually provides.
func Read(r io.Reader) (*Snapshot, error) {
	fileCRC := crc32.NewIEEE()
	in := io.TeeReader(r, fileCRC)

	hdr := make([]byte, 32)
	if _, err := io.ReadFull(in, hdr); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(hdr[:4], headerMagic[:]) {
		return nil, fmt.Errorf("%w: header magic %q", ErrCorrupt, hdr[:4])
	}
	if got := crc32.ChecksumIEEE(hdr[:28]); got != binary.LittleEndian.Uint32(hdr[28:32]) {
		return nil, fmt.Errorf("%w: header CRC mismatch", ErrCorrupt)
	}
	v := binary.LittleEndian.Uint32(hdr[4:8])
	if v < minVersion || v > Version {
		return nil, fmt.Errorf("%w: format version %d, want %d..%d", ErrMismatch, v, minVersion, Version)
	}
	s := &Snapshot{
		Fingerprint: binary.LittleEndian.Uint64(hdr[8:16]),
		PruneEps:    math.Float64frombits(binary.LittleEndian.Uint64(hdr[16:24])),
		version:     v,
	}
	count := binary.LittleEndian.Uint32(hdr[24:28])
	if count > maxSections {
		return nil, fmt.Errorf("%w: implausible section count %d", ErrCorrupt, count)
	}

	for i := uint32(0); i < count; i++ {
		var nameLen uint16
		if err := binary.Read(in, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("%w: section %d name length: %v", ErrCorrupt, i, err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(in, name); err != nil {
			return nil, fmt.Errorf("%w: section %d name: %v", ErrCorrupt, i, err)
		}
		var dataLen uint64
		if err := binary.Read(in, binary.LittleEndian, &dataLen); err != nil {
			return nil, fmt.Errorf("%w: section %q data length: %v", ErrCorrupt, name, err)
		}
		if dataLen > maxSectionData {
			return nil, fmt.Errorf("%w: section %q claims %d bytes, cap is %d", ErrCorrupt, name, dataLen, maxSectionData)
		}
		data, err := readAll(in, dataLen)
		if err != nil {
			return nil, fmt.Errorf("%w: section %q data: %v", ErrCorrupt, name, err)
		}
		var wantCRC uint32
		if err := binary.Read(in, binary.LittleEndian, &wantCRC); err != nil {
			return nil, fmt.Errorf("%w: section %q CRC: %v", ErrCorrupt, name, err)
		}
		crc := crc32.NewIEEE()
		crc.Write(name)
		crc.Write(data)
		if crc.Sum32() != wantCRC {
			return nil, fmt.Errorf("%w: section %q CRC mismatch", ErrCorrupt, name)
		}
		s.Sections = append(s.Sections, Section{Name: string(name), Data: data})
	}

	var foot [4]byte
	if _, err := io.ReadFull(in, foot[:]); err != nil {
		return nil, fmt.Errorf("%w: reading footer: %v", ErrCorrupt, err)
	}
	if foot != footerMagic {
		return nil, fmt.Errorf("%w: footer magic %q", ErrCorrupt, foot)
	}
	wantFile := fileCRC.Sum32() // everything up to and including the footer magic
	var gotFile uint32
	if err := binary.Read(r, binary.LittleEndian, &gotFile); err != nil {
		return nil, fmt.Errorf("%w: reading file CRC: %v", ErrCorrupt, err)
	}
	if gotFile != wantFile {
		return nil, fmt.Errorf("%w: file CRC mismatch", ErrCorrupt)
	}
	// The format is canonical: nothing may follow the file CRC.
	var trailing [1]byte
	if _, err := io.ReadFull(r, trailing[:]); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after file CRC", ErrCorrupt)
	}
	return s, nil
}

// readAll reads exactly n bytes in bounded chunks. Allocation tracks the
// bytes actually read, so a length prefix far larger than the remaining
// stream fails with a small buffer instead of a giant make().
func readAll(r io.Reader, n uint64) ([]byte, error) {
	var buf bytes.Buffer
	for n > 0 {
		chunk := int64(copyChunk)
		if uint64(chunk) > n {
			chunk = int64(n)
		}
		if _, err := io.CopyN(&buf, r, chunk); err != nil {
			return nil, err
		}
		n -= uint64(chunk)
	}
	return buf.Bytes(), nil
}
