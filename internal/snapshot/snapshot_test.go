package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hetesim/internal/sparse"
)

func testSnapshot() *Snapshot {
	return &Snapshot{
		Fingerprint: 0xdeadbeefcafef00d,
		PruneEps:    1e-6,
		Sections: []Section{
			{Name: "meta", Data: []byte(`{"saved_by":"test"}`)},
			{Name: "chain:C:write|cite~", Data: bytes.Repeat([]byte{7, 1}, 300)},
			{Name: "empty", Data: nil},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	want := testSnapshot()
	var buf bytes.Buffer
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != want.Fingerprint || got.PruneEps != want.PruneEps {
		t.Errorf("header round trip: got %x/%g want %x/%g",
			got.Fingerprint, got.PruneEps, want.Fingerprint, want.PruneEps)
	}
	if len(got.Sections) != len(want.Sections) {
		t.Fatalf("sections: got %d want %d", len(got.Sections), len(want.Sections))
	}
	for i, sec := range got.Sections {
		if sec.Name != want.Sections[i].Name || !bytes.Equal(sec.Data, want.Sections[i].Data) {
			t.Errorf("section %d differs", i)
		}
	}
}

// TestEveryTruncationRejected chops the serialized snapshot at every length
// shorter than the whole file; each prefix must be rejected, never accepted.
func TestEveryTruncationRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for n := 0; n < len(raw); n++ {
		if _, err := Read(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes was accepted", n, len(raw))
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrMismatch) {
			t.Fatalf("truncation to %d: error %v is not ErrCorrupt/ErrMismatch", n, err)
		}
	}
}

// TestEveryBitFlipRejected flips a bit in every byte of the file; every
// flip must be caught by one of the checksums or structural checks.
func TestEveryBitFlipRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for off := 0; off < len(raw); off++ {
		for _, mask := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), raw...)
			mut[off] ^= mask
			if _, err := Read(bytes.NewReader(mut)); err == nil {
				t.Fatalf("bit flip at byte %d (mask %#x) was accepted", off, mask)
			}
		}
	}
}

func TestVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 99 // version byte; header CRC now also mismatches — either way rejected
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("accepted bumped version")
	}
}

func TestCheckCompat(t *testing.T) {
	s := testSnapshot()
	if err := s.CheckCompat(s.Fingerprint, s.PruneEps); err != nil {
		t.Fatalf("matching compat check failed: %v", err)
	}
	if err := s.CheckCompat(s.Fingerprint+1, s.PruneEps); !errors.Is(err, ErrMismatch) {
		t.Fatalf("wrong fingerprint: err = %v, want ErrMismatch", err)
	}
	if err := s.CheckCompat(s.Fingerprint, 0); !errors.Is(err, ErrMismatch) {
		t.Fatalf("wrong prune eps: err = %v, want ErrMismatch", err)
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	want := testSnapshot()
	if err := Save(OS{}, path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != want.Fingerprint || len(got.Sections) != len(want.Sections) {
		t.Fatalf("loaded snapshot differs: %+v", got)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after save, want just the snapshot", len(entries))
	}
	// A missing snapshot is reported as not-exist, the cold-start signal.
	if _, err := Load(OS{}, filepath.Join(dir, "nope.snap")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want ErrNotExist", err)
	}
}

func TestChainsCodec(t *testing.T) {
	chains := map[string]*sparse.Matrix{
		"C:write":       sparse.New(3, 4, []sparse.Triplet{{Row: 0, Col: 1, Val: 0.5}, {Row: 2, Col: 3, Val: 1}}),
		"C:write|cite~": sparse.New(2, 2, nil),
	}
	s := &Snapshot{Fingerprint: 1}
	if err := EncodeChains(s, chains); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeChains(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(chains) {
		t.Fatalf("decoded %d chains, want %d", len(got), len(chains))
	}
	for k, m := range chains {
		gm, ok := got[k]
		if !ok {
			t.Fatalf("chain %q missing after round trip", k)
		}
		if !reflect.DeepEqual(gm.Triplets(), m.Triplets()) || gm.Rows() != m.Rows() || gm.Cols() != m.Cols() {
			t.Errorf("chain %q differs after round trip", k)
		}
	}
}

// TestChainPayloadSizeGuard hand-crafts a chain section whose matrix header
// declares far more entries than the payload carries; the decoder must
// reject it before allocating for the declared size.
func TestChainPayloadSizeGuard(t *testing.T) {
	var buf bytes.Buffer
	if err := sparse.WriteMatrix(&buf, sparse.New(2, 2, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}})); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// nnz lives at bytes 24..32; claim 2^33 entries.
	for i := 24; i < 32; i++ {
		raw[i] = 0
	}
	raw[28] = 2 // 2 << 32
	s := &Snapshot{Sections: []Section{{Name: "chain:x", Data: raw}}}
	if _, err := DecodeChains(s); err == nil {
		t.Fatal("oversized nnz declaration was accepted")
	}
}
