package sparse

import (
	"bytes"
	"testing"
)

// FuzzReadMatrix checks the binary matrix reader never panics and never
// accepts a structurally inconsistent matrix.
func FuzzReadMatrix(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, FromDense([][]float64{{1, 0, 2}, {0, 3, 0}})); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	buf.Reset()
	if err := WriteMatrix(&buf, Zeros(0, 0)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("CSRM"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMatrix(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must behave like a well-formed matrix.
		rows, cols := m.Dims()
		if rows < 0 || cols < 0 {
			t.Fatal("negative dims accepted")
		}
		// Every access within bounds must be safe, and a round trip must
		// reproduce the matrix.
		for r := 0; r < rows; r++ {
			_ = m.Row(r)
		}
		var out bytes.Buffer
		if err := WriteMatrix(&out, m); err != nil {
			t.Fatalf("accepted matrix does not serialize: %v", err)
		}
		m2, err := ReadMatrix(&out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !m2.Equal(m) {
			t.Fatal("round trip changed matrix")
		}
	})
}
