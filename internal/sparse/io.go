package sparse

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary serialization of CSR matrices, used to persist materialized
// reachable probability matrices (the offline materialization speedup of
// Section 4.6 of the paper). The format is a fixed little-endian layout:
//
//	magic "CSRM" | version u32 | rows u64 | cols u64 | nnz u64
//	rowPtr (rows+1 × u64) | colIdx (nnz × u64) | val (nnz × f64)

var (
	// ErrBadFormat marks a malformed or corrupted serialized matrix.
	ErrBadFormat = errors.New("sparse: bad matrix format")

	matrixMagic   = [4]byte{'C', 'S', 'R', 'M'}
	matrixVersion = uint32(1)
)

// WriteMatrix serializes m to w in the binary CSR format.
func WriteMatrix(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(matrixMagic[:]); err != nil {
		return err
	}
	hdr := []uint64{uint64(matrixVersion), uint64(m.rows), uint64(m.cols), uint64(len(m.val))}
	if err := binary.Write(bw, binary.LittleEndian, uint32(hdr[0])); err != nil {
		return err
	}
	for _, v := range hdr[1:] {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, p := range m.rowPtr {
		if err := binary.Write(bw, binary.LittleEndian, uint64(p)); err != nil {
			return err
		}
	}
	for _, c := range m.colIdx {
		if err := binary.Write(bw, binary.LittleEndian, uint64(c)); err != nil {
			return err
		}
	}
	for _, v := range m.val {
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(v)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMatrix deserializes a matrix written by WriteMatrix, validating the
// structural invariants (monotone row pointers, in-range sorted columns) so
// a corrupted file cannot produce an inconsistent matrix.
func ReadMatrix(r io.Reader) (*Matrix, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrBadFormat, err)
	}
	if magic != matrixMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: reading version: %v", ErrBadFormat, err)
	}
	if version != matrixVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
	}
	var rows, cols, nnz uint64
	for _, dst := range []*uint64{&rows, &cols, &nnz} {
		if err := binary.Read(br, binary.LittleEndian, dst); err != nil {
			return nil, fmt.Errorf("%w: reading header: %v", ErrBadFormat, err)
		}
	}
	const maxDim = 1 << 40 // sanity cap against absurd headers
	if rows > maxDim || cols > maxDim || nnz > maxDim {
		return nil, fmt.Errorf("%w: implausible dimensions %dx%d nnz=%d", ErrBadFormat, rows, cols, nnz)
	}
	m := &Matrix{
		rows:   int(rows),
		cols:   int(cols),
		rowPtr: make([]int, rows+1),
		colIdx: make([]int, nnz),
		val:    make([]float64, nnz),
	}
	for i := range m.rowPtr {
		var v uint64
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, fmt.Errorf("%w: reading row pointers: %v", ErrBadFormat, err)
		}
		m.rowPtr[i] = int(v)
	}
	for i := range m.colIdx {
		var v uint64
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, fmt.Errorf("%w: reading columns: %v", ErrBadFormat, err)
		}
		m.colIdx[i] = int(v)
	}
	for i := range m.val {
		var v uint64
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, fmt.Errorf("%w: reading values: %v", ErrBadFormat, err)
		}
		m.val[i] = math.Float64frombits(v)
	}
	// Structural validation.
	if m.rowPtr[0] != 0 || m.rowPtr[len(m.rowPtr)-1] != int(nnz) {
		return nil, fmt.Errorf("%w: row pointer endpoints", ErrBadFormat)
	}
	for i := 1; i < len(m.rowPtr); i++ {
		if m.rowPtr[i] < m.rowPtr[i-1] {
			return nil, fmt.Errorf("%w: non-monotone row pointers", ErrBadFormat)
		}
	}
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			if m.colIdx[k] < 0 || m.colIdx[k] >= m.cols {
				return nil, fmt.Errorf("%w: column %d out of range", ErrBadFormat, m.colIdx[k])
			}
			if k > m.rowPtr[r] && m.colIdx[k] <= m.colIdx[k-1] {
				return nil, fmt.Errorf("%w: unsorted columns in row %d", ErrBadFormat, r)
			}
		}
	}
	return m, nil
}
