package sparse

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary serialization of CSR matrices, used to persist materialized
// reachable probability matrices (the offline materialization speedup of
// Section 4.6 of the paper). The format is a fixed little-endian layout:
//
//	magic "CSRM" | version u32 | rows u64 | cols u64 | nnz u64
//	rowPtr (rows+1 × u64) | colIdx (nnz × u64) | val (nnz × f64)

var (
	// ErrBadFormat marks a malformed or corrupted serialized matrix.
	ErrBadFormat = errors.New("sparse: bad matrix format")

	matrixMagic   = [4]byte{'C', 'S', 'R', 'M'}
	matrixVersion = uint32(1)
)

// WriteMatrix serializes m to w in the binary CSR format. The element
// arrays are encoded directly into a scratch buffer rather than through
// binary.Write, whose per-element reflection dominates bulk serialization.
func WriteMatrix(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(matrixMagic[:]); err != nil {
		return err
	}
	var hdr [28]byte
	binary.LittleEndian.PutUint32(hdr[0:4], matrixVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(m.rows))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(m.cols))
	binary.LittleEndian.PutUint64(hdr[20:28], uint64(len(m.val)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var b [8]byte
	for _, p := range m.rowPtr {
		binary.LittleEndian.PutUint64(b[:], uint64(p))
		if _, err := bw.Write(b[:]); err != nil {
			return err
		}
	}
	for _, c := range m.colIdx {
		binary.LittleEndian.PutUint64(b[:], uint64(c))
		if _, err := bw.Write(b[:]); err != nil {
			return err
		}
	}
	for _, v := range m.val {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		if _, err := bw.Write(b[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMatrix deserializes a matrix written by WriteMatrix, validating the
// structural invariants (monotone row pointers, in-range sorted columns) so
// a corrupted file cannot produce an inconsistent matrix.
func ReadMatrix(r io.Reader) (*Matrix, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrBadFormat, err)
	}
	if magic != matrixMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, magic)
	}
	var hdr [28]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrBadFormat, err)
	}
	if version := binary.LittleEndian.Uint32(hdr[0:4]); version != matrixVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
	}
	rows := binary.LittleEndian.Uint64(hdr[4:12])
	cols := binary.LittleEndian.Uint64(hdr[12:20])
	nnz := binary.LittleEndian.Uint64(hdr[20:28])
	const maxDim = 1 << 40 // sanity cap against absurd headers
	if rows > maxDim || cols > maxDim || nnz > maxDim {
		return nil, fmt.Errorf("%w: implausible dimensions %dx%d nnz=%d", ErrBadFormat, rows, cols, nnz)
	}
	m := &Matrix{
		rows:   int(rows),
		cols:   int(cols),
		rowPtr: make([]int, rows+1),
		colIdx: make([]int, nnz),
		val:    make([]float64, nnz),
	}
	// Decode the element arrays through one fixed scratch buffer: a
	// per-element binary.Read costs a reflection pass and an allocation,
	// which at millions of nonzeros dominates a warm boot.
	var scratch [1 << 14]byte
	readInts := func(dst []int, what string) error {
		for len(dst) > 0 {
			n := len(dst) * 8
			if n > len(scratch) {
				n = len(scratch)
			}
			if _, err := io.ReadFull(br, scratch[:n]); err != nil {
				return fmt.Errorf("%w: reading %s: %v", ErrBadFormat, what, err)
			}
			for i := 0; i < n/8; i++ {
				dst[i] = int(binary.LittleEndian.Uint64(scratch[i*8 : i*8+8]))
			}
			dst = dst[n/8:]
		}
		return nil
	}
	if err := readInts(m.rowPtr, "row pointers"); err != nil {
		return nil, err
	}
	if err := readInts(m.colIdx, "columns"); err != nil {
		return nil, err
	}
	for vals := m.val; len(vals) > 0; {
		n := len(vals) * 8
		if n > len(scratch) {
			n = len(scratch)
		}
		if _, err := io.ReadFull(br, scratch[:n]); err != nil {
			return nil, fmt.Errorf("%w: reading values: %v", ErrBadFormat, err)
		}
		for i := 0; i < n/8; i++ {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(scratch[i*8 : i*8+8]))
		}
		vals = vals[n/8:]
	}
	// Structural validation.
	if m.rowPtr[0] != 0 || m.rowPtr[len(m.rowPtr)-1] != int(nnz) {
		return nil, fmt.Errorf("%w: row pointer endpoints", ErrBadFormat)
	}
	for i := 1; i < len(m.rowPtr); i++ {
		if m.rowPtr[i] < m.rowPtr[i-1] {
			return nil, fmt.Errorf("%w: non-monotone row pointers", ErrBadFormat)
		}
	}
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			if m.colIdx[k] < 0 || m.colIdx[k] >= m.cols {
				return nil, fmt.Errorf("%w: column %d out of range", ErrBadFormat, m.colIdx[k])
			}
			if k > m.rowPtr[r] && m.colIdx[k] <= m.colIdx[k-1] {
				return nil, fmt.Errorf("%w: unsorted columns in row %d", ErrBadFormat, r)
			}
		}
	}
	return m, nil
}
