package sparse

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(rng, 1+rng.Intn(20), 1+rng.Intn(20), 0.3)
		var buf bytes.Buffer
		if err := WriteMatrix(&buf, m); err != nil {
			return false
		}
		got, err := ReadMatrix(&buf)
		if err != nil {
			return false
		}
		return got.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMatrixRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, Zeros(3, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r, c := got.Dims()
	if r != 3 || c != 0 || got.NNZ() != 0 {
		t.Errorf("round trip = %dx%d nnz=%d", r, c, got.NNZ())
	}
}

func TestReadMatrixRejectsCorruption(t *testing.T) {
	m := FromDense([][]float64{{1, 0}, {0, 2}})
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXX"), good[4:]...),
		"truncated":   good[:len(good)-5],
		"bad version": append(append([]byte{}, good[:4]...), append([]byte{9, 0, 0, 0}, good[8:]...)...),
	}
	for name, data := range cases {
		if _, err := ReadMatrix(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("%s: err = %v, want ErrBadFormat", name, err)
		}
	}

	// Flip a column index out of range (colIdx section starts after
	// magic+version+3 u64 header+3 u64 rowPtr).
	bad := append([]byte{}, good...)
	off := 4 + 4 + 3*8 + 3*8
	bad[off] = 0xFF
	bad[off+1] = 0xFF
	if _, err := ReadMatrix(bytes.NewReader(bad)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("corrupt column: err = %v, want ErrBadFormat", err)
	}
}

func TestMulParallelMatchesMul(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 1+rng.Intn(40), 1+rng.Intn(30), 0.2)
		_, ac := a.Dims()
		b := randomMatrix(rng, ac, 1+rng.Intn(30), 0.2)
		for _, workers := range []int{0, 1, 3, 16} {
			if !a.MulParallel(b, workers).Equal(a.Mul(b)) {
				return false
			}
		}
		return a.MulAuto(b).Equal(a.Mul(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMulParallelLarge(t *testing.T) {
	// Exercise the genuinely parallel path above the flop threshold.
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(rng, 600, 600, 0.05)
	b := randomMatrix(rng, 600, 600, 0.05)
	if !a.MulParallel(b, 4).ApproxEqual(a.Mul(b), 0) {
		t.Error("parallel result differs on large product")
	}
	if !a.MulAuto(b).ApproxEqual(a.Mul(b), 0) {
		t.Error("MulAuto differs on large product")
	}
}

func BenchmarkSpGEMM(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomMatrix(rng, 2000, 2000, 0.01)
	y := randomMatrix(rng, 2000, 2000, 0.01)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x.Mul(y)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x.MulParallel(y, 0)
		}
	})
}
