// Package sparse implements the sparse linear algebra substrate used by the
// HeteSim engine: immutable CSR (compressed sparse row) matrices, sparse
// vectors, sparse-sparse products (SpGEMM), matrix-vector products, and the
// row/column stochastic normalizations that turn adjacency matrices into the
// transition probability matrices of Definition 8 in the paper.
//
// All matrices are immutable after construction; every operation returns a
// new matrix. This keeps concurrent readers safe without locks, which the
// HeteSim engine relies on when evaluating independent queries in parallel.
package sparse

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Matrix is an immutable sparse matrix in CSR form. The zero value is an
// empty 0x0 matrix. Entries within a row are stored in strictly increasing
// column order with no explicit zeros and no duplicate coordinates.
type Matrix struct {
	rows, cols int
	rowPtr     []int // len rows+1
	colIdx     []int // len nnz
	val        []float64
}

// Triplet is a single (row, col, value) coordinate entry used when building
// matrices. Duplicate coordinates are summed during construction.
type Triplet struct {
	Row, Col int
	Val      float64
}

// New builds a CSR matrix of the given shape from coordinate triplets.
// Duplicate coordinates are summed; resulting exact zeros are dropped.
// It panics if the shape is negative or any coordinate is out of range,
// since those are programming errors rather than data errors.
func New(rows, cols int, entries []Triplet) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative dimensions %dx%d", rows, cols))
	}
	for _, t := range entries {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			panic(fmt.Sprintf("sparse: entry (%d,%d) out of range for %dx%d matrix",
				t.Row, t.Col, rows, cols))
		}
	}
	// Sort by (row, col) and merge duplicates.
	ts := make([]Triplet, len(entries))
	copy(ts, entries)
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Row != ts[j].Row {
			return ts[i].Row < ts[j].Row
		}
		return ts[i].Col < ts[j].Col
	})
	m := &Matrix{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	var lastRow, lastCol = -1, -1
	for _, t := range ts {
		if t.Row == lastRow && t.Col == lastCol {
			m.val[len(m.val)-1] += t.Val
			continue
		}
		m.colIdx = append(m.colIdx, t.Col)
		m.val = append(m.val, t.Val)
		for r := lastRow + 1; r <= t.Row; r++ {
			m.rowPtr[r] = len(m.val) - 1
		}
		lastRow, lastCol = t.Row, t.Col
	}
	for r := lastRow + 1; r <= rows; r++ {
		m.rowPtr[r] = len(m.val)
	}
	return m.dropZeros()
}

// dropZeros removes explicit zeros left behind by cancellation in duplicate
// merging or arithmetic. It rebuilds in place and returns the receiver.
func (m *Matrix) dropZeros() *Matrix {
	hasZero := false
	for _, v := range m.val {
		if v == 0 {
			hasZero = true
			break
		}
	}
	if !hasZero {
		return m
	}
	newPtr := make([]int, m.rows+1)
	var nc []int
	var nv []float64
	for r := 0; r < m.rows; r++ {
		newPtr[r] = len(nv)
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			if m.val[k] != 0 {
				nc = append(nc, m.colIdx[k])
				nv = append(nv, m.val[k])
			}
		}
	}
	newPtr[m.rows] = len(nv)
	m.rowPtr, m.colIdx, m.val = newPtr, nc, nv
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := &Matrix{rows: n, cols: n, rowPtr: make([]int, n+1),
		colIdx: make([]int, n), val: make([]float64, n)}
	for i := 0; i < n; i++ {
		m.rowPtr[i] = i
		m.colIdx[i] = i
		m.val[i] = 1
	}
	m.rowPtr[n] = n
	return m
}

// Zeros returns an all-zero matrix of the given shape.
func Zeros(rows, cols int) *Matrix {
	return &Matrix{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
}

// FromDense builds a sparse matrix from a dense row-major [][]float64,
// dropping exact zeros. All rows must have equal length.
func FromDense(d [][]float64) *Matrix {
	rows := len(d)
	cols := 0
	if rows > 0 {
		cols = len(d[0])
	}
	var ts []Triplet
	for i, row := range d {
		if len(row) != cols {
			panic("sparse: ragged dense input")
		}
		for j, v := range row {
			if v != 0 {
				ts = append(ts, Triplet{i, j, v})
			}
		}
	}
	return New(rows, cols, ts)
}

// Dims returns the (rows, cols) shape.
func (m *Matrix) Dims() (int, int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// NNZ returns the number of stored (non-zero) entries.
func (m *Matrix) NNZ() int { return len(m.val) }

// At returns the entry at (i, j), using binary search within row i.
func (m *Matrix) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("sparse: At(%d,%d) out of range for %dx%d", i, j, m.rows, m.cols))
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	k := lo + sort.SearchInts(m.colIdx[lo:hi], j)
	if k < hi && m.colIdx[k] == j {
		return m.val[k]
	}
	return 0
}

// Row returns row i as a sparse Vector sharing no storage with m.
func (m *Matrix) Row(i int) *Vector {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("sparse: Row(%d) out of range for %d rows", i, m.rows))
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	v := &Vector{n: m.cols,
		idx: make([]int, hi-lo),
		val: make([]float64, hi-lo)}
	copy(v.idx, m.colIdx[lo:hi])
	copy(v.val, m.val[lo:hi])
	return v
}

// RowNNZ returns the number of stored entries in row i.
func (m *Matrix) RowNNZ(i int) int { return m.rowPtr[i+1] - m.rowPtr[i] }

// RowDense writes row i into dst (which must have length Cols) and returns
// it; if dst is nil a new slice is allocated.
func (m *Matrix) RowDense(i int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.cols)
	} else {
		if len(dst) != m.cols {
			panic("sparse: RowDense dst length mismatch")
		}
		for k := range dst {
			dst[k] = 0
		}
	}
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		dst[m.colIdx[k]] = m.val[k]
	}
	return dst
}

// Transpose returns the transposed matrix.
func (m *Matrix) Transpose() *Matrix {
	t := &Matrix{rows: m.cols, cols: m.rows,
		rowPtr: make([]int, m.cols+1),
		colIdx: make([]int, len(m.colIdx)),
		val:    make([]float64, len(m.val))}
	// Count entries per column of m (= per row of t).
	for _, c := range m.colIdx {
		t.rowPtr[c+1]++
	}
	for i := 0; i < m.cols; i++ {
		t.rowPtr[i+1] += t.rowPtr[i]
	}
	next := make([]int, m.cols)
	copy(next, t.rowPtr[:m.cols])
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			c := m.colIdx[k]
			p := next[c]
			t.colIdx[p] = r
			t.val[p] = m.val[k]
			next[c]++
		}
	}
	return t
}

// Mul returns the product m * b using row-wise SpGEMM with a dense
// accumulator (Gustavson's algorithm). Panics on shape mismatch.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("sparse: Mul shape mismatch %dx%d * %dx%d",
			m.rows, m.cols, b.rows, b.cols))
	}
	out := &Matrix{rows: m.rows, cols: b.cols, rowPtr: make([]int, m.rows+1)}
	acc := make([]float64, b.cols)
	mark := make([]int, b.cols) // mark[c] == r+1 when acc[c] is live for row r
	cols := make([]int, 0, b.cols)
	flops := 0
	for r := 0; r < m.rows; r++ {
		cols = cols[:0]
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			j, av := m.colIdx[k], m.val[k]
			flops += b.rowPtr[j+1] - b.rowPtr[j]
			for kb := b.rowPtr[j]; kb < b.rowPtr[j+1]; kb++ {
				c := b.colIdx[kb]
				if mark[c] != r+1 {
					mark[c] = r + 1
					acc[c] = 0
					cols = append(cols, c)
				}
				acc[c] += av * b.val[kb]
			}
		}
		sort.Ints(cols)
		for _, c := range cols {
			if acc[c] != 0 {
				out.colIdx = append(out.colIdx, c)
				out.val = append(out.val, acc[c])
			}
		}
		out.rowPtr[r+1] = len(out.val)
	}
	recordMul(flops, len(out.val), false)
	return out
}

// MulVec returns m * x as a dense vector (length Rows). x must have length
// Cols.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic("sparse: MulVec length mismatch")
	}
	y := make([]float64, m.rows)
	for r := 0; r < m.rows; r++ {
		var s float64
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			s += m.val[k] * x[m.colIdx[k]]
		}
		y[r] = s
	}
	return y
}

// VecMul returns x' * m as a dense vector (length Cols). x must have length
// Rows. This is the workhorse of single-source reachable probability
// propagation: a distribution over the current type times the transition
// matrix of the next relation.
func (m *Matrix) VecMul(x []float64) []float64 {
	if len(x) != m.rows {
		panic("sparse: VecMul length mismatch")
	}
	y := make([]float64, m.cols)
	for r := 0; r < m.rows; r++ {
		xv := x[r]
		if xv == 0 {
			continue
		}
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			y[m.colIdx[k]] += xv * m.val[k]
		}
	}
	return y
}

// Scale returns m with every entry multiplied by a. Scaling by zero returns
// an empty matrix of the same shape.
func (m *Matrix) Scale(a float64) *Matrix {
	if a == 0 {
		return Zeros(m.rows, m.cols)
	}
	out := m.clone()
	for i := range out.val {
		out.val[i] *= a
	}
	return out
}

// Add returns m + b. Panics on shape mismatch.
func (m *Matrix) Add(b *Matrix) *Matrix {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("sparse: Add shape mismatch %dx%d + %dx%d",
			m.rows, m.cols, b.rows, b.cols))
	}
	out := &Matrix{rows: m.rows, cols: m.cols, rowPtr: make([]int, m.rows+1)}
	for r := 0; r < m.rows; r++ {
		ka, ea := m.rowPtr[r], m.rowPtr[r+1]
		kb, eb := b.rowPtr[r], b.rowPtr[r+1]
		for ka < ea || kb < eb {
			switch {
			case kb >= eb || (ka < ea && m.colIdx[ka] < b.colIdx[kb]):
				out.colIdx = append(out.colIdx, m.colIdx[ka])
				out.val = append(out.val, m.val[ka])
				ka++
			case ka >= ea || b.colIdx[kb] < m.colIdx[ka]:
				out.colIdx = append(out.colIdx, b.colIdx[kb])
				out.val = append(out.val, b.val[kb])
				kb++
			default:
				s := m.val[ka] + b.val[kb]
				if s != 0 {
					out.colIdx = append(out.colIdx, m.colIdx[ka])
					out.val = append(out.val, s)
				}
				ka++
				kb++
			}
		}
		out.rowPtr[r+1] = len(out.val)
	}
	return out
}

// Hadamard returns the element-wise product of m and b.
func (m *Matrix) Hadamard(b *Matrix) *Matrix {
	if m.rows != b.rows || m.cols != b.cols {
		panic("sparse: Hadamard shape mismatch")
	}
	out := &Matrix{rows: m.rows, cols: m.cols, rowPtr: make([]int, m.rows+1)}
	for r := 0; r < m.rows; r++ {
		ka, ea := m.rowPtr[r], m.rowPtr[r+1]
		kb, eb := b.rowPtr[r], b.rowPtr[r+1]
		for ka < ea && kb < eb {
			switch {
			case m.colIdx[ka] < b.colIdx[kb]:
				ka++
			case b.colIdx[kb] < m.colIdx[ka]:
				kb++
			default:
				p := m.val[ka] * b.val[kb]
				if p != 0 {
					out.colIdx = append(out.colIdx, m.colIdx[ka])
					out.val = append(out.val, p)
				}
				ka++
				kb++
			}
		}
		out.rowPtr[r+1] = len(out.val)
	}
	return out
}

// RowSums returns the vector of per-row sums.
func (m *Matrix) RowSums() []float64 {
	s := make([]float64, m.rows)
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			s[r] += m.val[k]
		}
	}
	return s
}

// ColSums returns the vector of per-column sums.
func (m *Matrix) ColSums() []float64 {
	s := make([]float64, m.cols)
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			s[m.colIdx[k]] += m.val[k]
		}
	}
	return s
}

// RowNormalize returns the row-stochastic matrix U obtained by dividing each
// row by its sum (Definition 8: the transition probability matrix of A→B).
// Rows that sum to zero are left zero, matching the paper's convention that
// objects without out-neighbors contribute zero relatedness.
func (m *Matrix) RowNormalize() *Matrix {
	out := m.clone()
	for r := 0; r < out.rows; r++ {
		var s float64
		for k := out.rowPtr[r]; k < out.rowPtr[r+1]; k++ {
			s += out.val[k]
		}
		if s == 0 {
			continue
		}
		inv := 1 / s
		for k := out.rowPtr[r]; k < out.rowPtr[r+1]; k++ {
			out.val[k] *= inv
		}
	}
	return out
}

// ColNormalize returns the column-stochastic matrix V obtained by dividing
// each column by its sum (Definition 8: the transition probability matrix of
// B→A based on the inverse relation). Columns summing to zero are left zero.
func (m *Matrix) ColNormalize() *Matrix {
	sums := m.ColSums()
	out := m.clone()
	for r := 0; r < out.rows; r++ {
		for k := out.rowPtr[r]; k < out.rowPtr[r+1]; k++ {
			if s := sums[out.colIdx[k]]; s != 0 {
				out.val[k] /= s
			}
		}
	}
	return out
}

// RowNorms returns the per-row Euclidean (L2) norms, used to normalize
// HeteSim into its cosine form (Definition 10).
func (m *Matrix) RowNorms() []float64 {
	s := make([]float64, m.rows)
	for r := 0; r < m.rows; r++ {
		var q float64
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			q += m.val[k] * m.val[k]
		}
		s[r] = math.Sqrt(q)
	}
	return s
}

// ScaleRows returns a copy of m with row i multiplied by d[i].
func (m *Matrix) ScaleRows(d []float64) *Matrix {
	if len(d) != m.rows {
		panic("sparse: ScaleRows length mismatch")
	}
	out := m.clone()
	for r := 0; r < out.rows; r++ {
		for k := out.rowPtr[r]; k < out.rowPtr[r+1]; k++ {
			out.val[k] *= d[r]
		}
	}
	return out.dropZeros()
}

// ScaleCols returns a copy of m with column j multiplied by d[j].
func (m *Matrix) ScaleCols(d []float64) *Matrix {
	if len(d) != m.cols {
		panic("sparse: ScaleCols length mismatch")
	}
	out := m.clone()
	for r := 0; r < out.rows; r++ {
		for k := out.rowPtr[r]; k < out.rowPtr[r+1]; k++ {
			out.val[k] *= d[out.colIdx[k]]
		}
	}
	return out.dropZeros()
}

// Prune returns a copy of m with all entries of absolute value below eps
// removed. It implements the truncation speedup discussed in Section 4.6 of
// the paper: small reachable probabilities are dropped with bounded error.
func (m *Matrix) Prune(eps float64) *Matrix {
	out := &Matrix{rows: m.rows, cols: m.cols, rowPtr: make([]int, m.rows+1)}
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			if math.Abs(m.val[k]) >= eps {
				out.colIdx = append(out.colIdx, m.colIdx[k])
				out.val = append(out.val, m.val[k])
			}
		}
		out.rowPtr[r+1] = len(out.val)
	}
	return out
}

// SelectRows returns the submatrix formed by the given rows, in the given
// order (rows may repeat). Column count is unchanged.
func (m *Matrix) SelectRows(rows []int) *Matrix {
	out := &Matrix{rows: len(rows), cols: m.cols, rowPtr: make([]int, len(rows)+1)}
	for p, r := range rows {
		if r < 0 || r >= m.rows {
			panic(fmt.Sprintf("sparse: SelectRows row %d out of range for %d rows", r, m.rows))
		}
		out.colIdx = append(out.colIdx, m.colIdx[m.rowPtr[r]:m.rowPtr[r+1]]...)
		out.val = append(out.val, m.val[m.rowPtr[r]:m.rowPtr[r+1]]...)
		out.rowPtr[p+1] = len(out.val)
	}
	return out
}

// Resize returns a copy of the matrix padded to the given (never smaller)
// dimensions. Existing entries keep their positions and values bit for bit;
// the new rows and columns are empty — exactly what a freshly materialized
// chain over a graph that only gained (edge-less) nodes would contain, which
// is why incremental maintenance can pad a cached chain instead of
// rebuilding it.
func (m *Matrix) Resize(rows, cols int) *Matrix {
	if rows < m.rows || cols < m.cols {
		panic(fmt.Sprintf("sparse: Resize to %dx%d would shrink a %dx%d matrix",
			rows, cols, m.rows, m.cols))
	}
	if rows == m.rows && cols == m.cols {
		return m
	}
	out := m.clone()
	out.cols = cols
	out.rows = rows
	for r := m.rows; r < rows; r++ {
		out.rowPtr = append(out.rowPtr, len(out.val))
	}
	return out
}

// ReplaceRows returns a copy of the matrix with row rows[i] replaced by row
// i of src, all other rows kept bit for bit. src must have the same column
// count; row indices may not repeat. This is the row-masked update of
// incremental chain maintenance: recompute only the dirty rows, splice them
// into the cached matrix.
func (m *Matrix) ReplaceRows(rows []int, src *Matrix) *Matrix {
	if src.cols != m.cols {
		panic(fmt.Sprintf("sparse: ReplaceRows column mismatch %d vs %d", src.cols, m.cols))
	}
	if len(rows) != src.rows {
		panic(fmt.Sprintf("sparse: ReplaceRows got %d row indices for %d source rows", len(rows), src.rows))
	}
	from := make(map[int]int, len(rows))
	for i, r := range rows {
		if r < 0 || r >= m.rows {
			panic(fmt.Sprintf("sparse: ReplaceRows row %d out of range for %d rows", r, m.rows))
		}
		if _, dup := from[r]; dup {
			panic(fmt.Sprintf("sparse: ReplaceRows row %d repeated", r))
		}
		from[r] = i
	}
	out := &Matrix{rows: m.rows, cols: m.cols, rowPtr: make([]int, 1, m.rows+1)}
	for r := 0; r < m.rows; r++ {
		if i, ok := from[r]; ok {
			out.colIdx = append(out.colIdx, src.colIdx[src.rowPtr[i]:src.rowPtr[i+1]]...)
			out.val = append(out.val, src.val[src.rowPtr[i]:src.rowPtr[i+1]]...)
		} else {
			out.colIdx = append(out.colIdx, m.colIdx[m.rowPtr[r]:m.rowPtr[r+1]]...)
			out.val = append(out.val, m.val[m.rowPtr[r]:m.rowPtr[r+1]]...)
		}
		out.rowPtr = append(out.rowPtr, len(out.val))
	}
	return out
}

// VStack concatenates matrices vertically, preserving values and per-row
// entry order exactly — stacking row blocks of a product reproduces the
// unblocked product bit for bit. All blocks must share one column count;
// the empty stack is the 0x0 matrix.
func VStack(blocks []*Matrix) *Matrix {
	if len(blocks) == 0 {
		return Zeros(0, 0)
	}
	cols := blocks[0].cols
	rows, nnz := 0, 0
	for _, b := range blocks {
		if b.cols != cols {
			panic(fmt.Sprintf("sparse: VStack column mismatch %d vs %d", b.cols, cols))
		}
		rows += b.rows
		nnz += len(b.val)
	}
	m := &Matrix{rows: rows, cols: cols,
		rowPtr: make([]int, 1, rows+1),
		colIdx: make([]int, 0, nnz),
		val:    make([]float64, 0, nnz)}
	for _, b := range blocks {
		base := len(m.val)
		for r := 0; r < b.rows; r++ {
			m.rowPtr = append(m.rowPtr, base+b.rowPtr[r+1])
		}
		m.colIdx = append(m.colIdx, b.colIdx...)
		m.val = append(m.val, b.val...)
	}
	return m
}

// Dense returns the matrix as a freshly allocated dense [][]float64.
func (m *Matrix) Dense() [][]float64 {
	d := make([][]float64, m.rows)
	for r := 0; r < m.rows; r++ {
		d[r] = make([]float64, m.cols)
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			d[r][m.colIdx[k]] = m.val[k]
		}
	}
	return d
}

// Equal reports whether m and b have identical shape and entries.
func (m *Matrix) Equal(b *Matrix) bool { return m.ApproxEqual(b, 0) }

// ApproxEqual reports whether m and b have identical shape and entries equal
// within absolute tolerance tol.
func (m *Matrix) ApproxEqual(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for r := 0; r < m.rows; r++ {
		ka, ea := m.rowPtr[r], m.rowPtr[r+1]
		kb, eb := b.rowPtr[r], b.rowPtr[r+1]
		for ka < ea || kb < eb {
			switch {
			case kb >= eb || (ka < ea && m.colIdx[ka] < b.colIdx[kb]):
				if math.Abs(m.val[ka]) > tol {
					return false
				}
				ka++
			case ka >= ea || b.colIdx[kb] < m.colIdx[ka]:
				if math.Abs(b.val[kb]) > tol {
					return false
				}
				kb++
			default:
				if math.Abs(m.val[ka]-b.val[kb]) > tol {
					return false
				}
				ka++
				kb++
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute entry value, or 0 for an empty matrix.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.val {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Sum returns the sum of all entries.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.val {
		s += v
	}
	return s
}

func (m *Matrix) clone() *Matrix {
	out := &Matrix{rows: m.rows, cols: m.cols,
		rowPtr: make([]int, len(m.rowPtr)),
		colIdx: make([]int, len(m.colIdx)),
		val:    make([]float64, len(m.val))}
	copy(out.rowPtr, m.rowPtr)
	copy(out.colIdx, m.colIdx)
	copy(out.val, m.val)
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix { return m.clone() }

// Triplets returns the stored entries in row-major order.
func (m *Matrix) Triplets() []Triplet {
	ts := make([]Triplet, 0, len(m.val))
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			ts = append(ts, Triplet{r, m.colIdx[k], m.val[k]})
		}
	}
	return ts
}

// String renders small matrices densely and large ones as a summary.
func (m *Matrix) String() string {
	if m.rows*m.cols > 400 {
		return fmt.Sprintf("sparse.Matrix(%dx%d, nnz=%d)", m.rows, m.cols, len(m.val))
	}
	var b strings.Builder
	d := m.Dense()
	for _, row := range d {
		for j, v := range row {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%6.3f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
