package sparse

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mat(t *testing.T, d [][]float64) *Matrix {
	t.Helper()
	return FromDense(d)
}

func TestNewMergesDuplicatesAndDropsZeros(t *testing.T) {
	m := New(2, 3, []Triplet{
		{0, 1, 2}, {0, 1, 3}, // duplicates sum to 5
		{1, 2, 4}, {1, 2, -4}, // duplicates cancel to 0
		{1, 0, 7},
	})
	if got := m.At(0, 1); got != 5 {
		t.Errorf("At(0,1) = %v, want 5", got)
	}
	if got := m.At(1, 2); got != 0 {
		t.Errorf("At(1,2) = %v, want 0", got)
	}
	if got := m.NNZ(); got != 2 {
		t.Errorf("NNZ = %d, want 2 (cancelled entry must be dropped)", got)
	}
}

func TestNewOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range triplet")
		}
	}()
	New(2, 2, []Triplet{{2, 0, 1}})
}

func TestIdentity(t *testing.T) {
	m := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if got := m.At(i, j); got != want {
				t.Errorf("I(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestFromDenseRoundTrip(t *testing.T) {
	d := [][]float64{{1, 0, 2}, {0, 0, 0}, {3, 4, 0}}
	m := FromDense(d)
	if !reflect.DeepEqual(m.Dense(), d) {
		t.Errorf("Dense round trip mismatch: got %v want %v", m.Dense(), d)
	}
	if m.NNZ() != 4 {
		t.Errorf("NNZ = %d, want 4", m.NNZ())
	}
}

func TestTranspose(t *testing.T) {
	m := mat(t, [][]float64{{1, 2, 0}, {0, 3, 4}})
	mt := m.Transpose()
	r, c := mt.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("Transpose dims = %dx%d, want 3x2", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Errorf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulMatchesDense(t *testing.T) {
	a := mat(t, [][]float64{{1, 2, 0}, {0, 0, 3}})
	b := mat(t, [][]float64{{1, 0}, {0, 1}, {2, 2}})
	got := a.Mul(b).Dense()
	want := [][]float64{{1, 2}, {6, 6}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Mul = %v, want %v", got, want)
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	Zeros(2, 3).Mul(Zeros(2, 3))
}

func randomMatrix(rng *rand.Rand, rows, cols int, density float64) *Matrix {
	var ts []Triplet
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				ts = append(ts, Triplet{i, j, rng.NormFloat64()})
			}
		}
	}
	return New(rows, cols, ts)
}

func denseMul(a, b [][]float64) [][]float64 {
	rows, inner, cols := len(a), len(b), len(b[0])
	out := make([][]float64, rows)
	for i := range out {
		out[i] = make([]float64, cols)
		for k := 0; k < inner; k++ {
			for j := 0; j < cols; j++ {
				out[i][j] += a[i][k] * b[k][j]
			}
		}
	}
	return out
}

func TestMulRandomAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		r := 1 + rng.Intn(12)
		k := 1 + rng.Intn(12)
		c := 1 + rng.Intn(12)
		a := randomMatrix(rng, r, k, 0.3)
		b := randomMatrix(rng, k, c, 0.3)
		got := a.Mul(b)
		want := FromDense(denseMul(a.Dense(), b.Dense()))
		if !got.ApproxEqual(want, 1e-12) {
			t.Fatalf("trial %d: sparse Mul disagrees with dense reference", trial)
		}
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	// (AB)C == A(BC) — the identity that lets the HeteSim engine
	// concatenate partially materialized reachable probability matrices.
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomMatrix(r, 2+rng.Intn(8), 2+rng.Intn(8), 0.4)
		_, ac := a.Dims()
		b := randomMatrix(r, ac, 2+rng.Intn(8), 0.4)
		_, bc := b.Dims()
		c := randomMatrix(r, bc, 2+rng.Intn(8), 0.4)
		return a.Mul(b).Mul(c).ApproxEqual(a.Mul(b.Mul(c)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomMatrix(r, 1+r.Intn(15), 1+r.Intn(15), 0.3)
		return a.Transpose().Transpose().Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMulTransposeProperty(t *testing.T) {
	// (AB)' == B'A' — underlies Property 2 of the paper (U_AB = V_BA').
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomMatrix(r, 1+r.Intn(10), 1+r.Intn(10), 0.4)
		_, ac := a.Dims()
		b := randomMatrix(r, ac, 1+r.Intn(10), 0.4)
		return a.Mul(b).Transpose().ApproxEqual(b.Transpose().Mul(a.Transpose()), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRowNormalize(t *testing.T) {
	m := mat(t, [][]float64{{1, 1, 2}, {0, 0, 0}, {5, 0, 0}})
	u := m.RowNormalize()
	want := [][]float64{{0.25, 0.25, 0.5}, {0, 0, 0}, {1, 0, 0}}
	if !u.ApproxEqual(FromDense(want), 1e-12) {
		t.Errorf("RowNormalize = %v, want %v", u.Dense(), want)
	}
	// Original must be unchanged (immutability).
	if m.At(0, 0) != 1 {
		t.Error("RowNormalize mutated its receiver")
	}
}

func TestColNormalize(t *testing.T) {
	m := mat(t, [][]float64{{1, 0}, {1, 0}, {2, 0}})
	v := m.ColNormalize()
	want := [][]float64{{0.25, 0}, {0.25, 0}, {0.5, 0}}
	if !v.ApproxEqual(FromDense(want), 1e-12) {
		t.Errorf("ColNormalize = %v, want %v", v.Dense(), want)
	}
}

func TestProperty2UequalsVTranspose(t *testing.T) {
	// Paper Property 2: U_AB = V_BA' and V_AB = U_BA'. With W_BA = W_AB',
	// row-normalizing W_AB must equal transposing the column-normalized
	// W_AB' (and vice versa).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := randomMatrix(r, 1+r.Intn(12), 1+r.Intn(12), 0.4)
		// Use absolute weights: adjacency matrices are non-negative.
		ts := w.Triplets()
		for i := range ts {
			ts[i].Val = math.Abs(ts[i].Val)
		}
		rr, cc := w.Dims()
		w = New(rr, cc, ts)
		u := w.RowNormalize()
		v := w.Transpose().ColNormalize().Transpose()
		return u.ApproxEqual(v, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMulVecAndVecMul(t *testing.T) {
	m := mat(t, [][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := m.MulVec([]float64{1, 10})
	want := []float64{21, 43, 65}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MulVec = %v, want %v", got, want)
	}
	got = m.VecMul([]float64{1, 0, 2})
	want = []float64{11, 14}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("VecMul = %v, want %v", got, want)
	}
}

func TestAddAndScale(t *testing.T) {
	a := mat(t, [][]float64{{1, 0}, {0, 2}})
	b := mat(t, [][]float64{{0, 3}, {0, -2}})
	sum := a.Add(b)
	want := [][]float64{{1, 3}, {0, 0}}
	if !sum.ApproxEqual(FromDense(want), 0) {
		t.Errorf("Add = %v, want %v", sum.Dense(), want)
	}
	if sum.NNZ() != 2 {
		t.Errorf("Add kept cancelled zero: NNZ = %d, want 2", sum.NNZ())
	}
	if got := a.Scale(2).At(1, 1); got != 4 {
		t.Errorf("Scale: got %v, want 4", got)
	}
	if got := a.Scale(0).NNZ(); got != 0 {
		t.Errorf("Scale(0) NNZ = %d, want 0", got)
	}
}

func TestHadamard(t *testing.T) {
	a := mat(t, [][]float64{{1, 2, 0}, {0, 3, 4}})
	b := mat(t, [][]float64{{5, 0, 7}, {0, 2, 2}})
	got := a.Hadamard(b)
	want := [][]float64{{5, 0, 0}, {0, 6, 8}}
	if !got.ApproxEqual(FromDense(want), 0) {
		t.Errorf("Hadamard = %v, want %v", got.Dense(), want)
	}
}

func TestRowColSumsAndNorms(t *testing.T) {
	m := mat(t, [][]float64{{3, 4}, {0, 0}, {1, 1}})
	if got := m.RowSums(); !reflect.DeepEqual(got, []float64{7, 0, 2}) {
		t.Errorf("RowSums = %v", got)
	}
	if got := m.ColSums(); !reflect.DeepEqual(got, []float64{4, 5}) {
		t.Errorf("ColSums = %v", got)
	}
	norms := m.RowNorms()
	if math.Abs(norms[0]-5) > 1e-12 || norms[1] != 0 {
		t.Errorf("RowNorms = %v", norms)
	}
}

func TestScaleRowsCols(t *testing.T) {
	m := mat(t, [][]float64{{1, 2}, {3, 4}})
	got := m.ScaleRows([]float64{2, 0})
	want := [][]float64{{2, 4}, {0, 0}}
	if !got.ApproxEqual(FromDense(want), 0) {
		t.Errorf("ScaleRows = %v, want %v", got.Dense(), want)
	}
	got = m.ScaleCols([]float64{0, 10})
	want = [][]float64{{0, 20}, {0, 40}}
	if !got.ApproxEqual(FromDense(want), 0) {
		t.Errorf("ScaleCols = %v, want %v", got.Dense(), want)
	}
}

func TestPrune(t *testing.T) {
	m := mat(t, [][]float64{{0.5, 1e-9}, {-1e-9, -0.5}})
	p := m.Prune(1e-6)
	if p.NNZ() != 2 {
		t.Errorf("Prune NNZ = %d, want 2", p.NNZ())
	}
	if p.At(0, 0) != 0.5 || p.At(1, 1) != -0.5 {
		t.Error("Prune dropped a large entry")
	}
}

func TestRowAccessors(t *testing.T) {
	m := mat(t, [][]float64{{0, 7, 0, 8}, {0, 0, 0, 0}})
	r := m.Row(0)
	if r.NNZ() != 2 || r.At(1) != 7 || r.At(3) != 8 {
		t.Errorf("Row(0) wrong: %v", r.Dense())
	}
	if m.RowNNZ(1) != 0 {
		t.Errorf("RowNNZ(1) = %d, want 0", m.RowNNZ(1))
	}
	d := m.RowDense(0, nil)
	if !reflect.DeepEqual(d, []float64{0, 7, 0, 8}) {
		t.Errorf("RowDense = %v", d)
	}
	// Reusing dst must clear stale values.
	d = m.RowDense(1, d)
	if !reflect.DeepEqual(d, []float64{0, 0, 0, 0}) {
		t.Errorf("RowDense with dst = %v, want zeros", d)
	}
}

func TestSelectRows(t *testing.T) {
	m := mat(t, [][]float64{{1, 0}, {0, 2}, {3, 4}})
	got := m.SelectRows([]int{2, 0, 2})
	want := [][]float64{{3, 4}, {1, 0}, {3, 4}}
	if !got.ApproxEqual(FromDense(want), 0) {
		t.Errorf("SelectRows = %v, want %v", got.Dense(), want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range row")
		}
	}()
	m.SelectRows([]int{3})
}

func TestTriplets(t *testing.T) {
	ts := []Triplet{{0, 1, 2}, {1, 0, 3}}
	m := New(2, 2, ts)
	if got := m.Triplets(); !reflect.DeepEqual(got, ts) {
		t.Errorf("Triplets = %v, want %v", got, ts)
	}
}

func TestMaxAbsAndSum(t *testing.T) {
	m := mat(t, [][]float64{{-3, 1}, {2, 0}})
	if got := m.MaxAbs(); got != 3 {
		t.Errorf("MaxAbs = %v, want 3", got)
	}
	if got := m.Sum(); got != 0 {
		t.Errorf("Sum = %v, want 0", got)
	}
	if got := Zeros(2, 2).MaxAbs(); got != 0 {
		t.Errorf("empty MaxAbs = %v, want 0", got)
	}
}

func TestStochasticChainStaysStochastic(t *testing.T) {
	// Products of row-stochastic matrices remain row-stochastic (when no
	// row is zero) — the invariant behind reachable probability matrices
	// (Definition 9).
	rng := rand.New(rand.NewSource(7))
	dims := []int{8, 5, 9, 4, 6}
	chain := Identity(dims[0])
	for i := 0; i+1 < len(dims); i++ {
		w := randomMatrix(rng, dims[i], dims[i+1], 0.6)
		ts := w.Triplets()
		for k := range ts {
			ts[k].Val = math.Abs(ts[k].Val) + 0.1
		}
		// Ensure no empty rows so stochasticity is exact.
		seen := make(map[int]bool)
		for _, tr := range ts {
			seen[tr.Row] = true
		}
		for r := 0; r < dims[i]; r++ {
			if !seen[r] {
				ts = append(ts, Triplet{r, rng.Intn(dims[i+1]), 1})
			}
		}
		chain = chain.Mul(New(dims[i], dims[i+1], ts).RowNormalize())
	}
	for r, s := range chain.RowSums() {
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("row %d sum = %v, want 1", r, s)
		}
	}
}

func TestStringSummarizesLargeMatrices(t *testing.T) {
	small := Identity(2)
	if s := small.String(); len(s) == 0 {
		t.Error("small String empty")
	}
	big := Zeros(100, 100)
	if s := big.String(); s != "sparse.Matrix(100x100, nnz=0)" {
		t.Errorf("big String = %q", s)
	}
}

func TestResize(t *testing.T) {
	m := New(2, 3, []Triplet{{0, 1, 2}, {1, 2, 3}})
	grown := m.Resize(4, 5)
	if r, c := grown.Dims(); r != 4 || c != 5 {
		t.Fatalf("Resize dims = %dx%d, want 4x5", r, c)
	}
	if grown.At(0, 1) != 2 || grown.At(1, 2) != 3 || grown.NNZ() != 2 {
		t.Fatalf("Resize lost entries: %v", grown)
	}
	for r := 2; r < 4; r++ {
		if grown.RowNNZ(r) != 0 {
			t.Fatalf("padded row %d is not empty", r)
		}
	}
	if same := m.Resize(2, 3); same != m {
		t.Error("no-op Resize should return the receiver")
	}
	defer func() {
		if recover() == nil {
			t.Error("shrinking Resize did not panic")
		}
	}()
	m.Resize(1, 3)
}

func TestReplaceRows(t *testing.T) {
	m := New(3, 3, []Triplet{{0, 0, 1}, {1, 1, 2}, {2, 2, 3}})
	repl := New(2, 3, []Triplet{{0, 2, 9}, {1, 0, 8}, {1, 1, 7}})
	out := m.ReplaceRows([]int{0, 2}, repl)
	want := FromDense([][]float64{{0, 0, 9}, {0, 2, 0}, {8, 7, 0}})
	if !out.Equal(want) {
		t.Fatalf("ReplaceRows = %v, want %v", out, want)
	}
	// Untouched rows must be bit-identical, with entries in the same order.
	if !m.Row(1).ApproxEqual(out.Row(1), 0) {
		t.Fatal("untouched row changed")
	}
	// Replacing every row with the rows of an identical matrix reproduces
	// the original bit for bit.
	all := m.ReplaceRows([]int{0, 1, 2}, m.SelectRows([]int{0, 1, 2}))
	if !all.Equal(m) {
		t.Fatal("identity ReplaceRows diverged")
	}
}
