package sparse

import "hetesim/internal/obs"

// Kernel-level observability: every multiply kernel reports its work into
// the process-wide registry, so one /metrics scrape shows how many
// floating-point multiply-adds the reachable-probability chains are
// actually pushing through the CSR kernels and how sparse their outputs
// stay. The counters are bumped once per kernel call (never inside inner
// loops), keeping the overhead a few atomic adds per multiply.
var (
	metMulTotal = obs.Default().Counter("hetesim_sparse_mul_total",
		"SpGEMM (matrix-matrix) kernel invocations, serial and parallel.")
	metMulParallelTotal = obs.Default().Counter("hetesim_sparse_mul_parallel_total",
		"SpGEMM invocations that fanned out across cores.")
	metMulFlops = obs.Default().Counter("hetesim_sparse_mul_flops_total",
		"Multiply-add operations performed by SpGEMM kernels.")
	metVecMulTotal = obs.Default().Counter("hetesim_sparse_vecmul_total",
		"Sparse vector-matrix kernel invocations (single-source propagation).")
	metVecMulFlops = obs.Default().Counter("hetesim_sparse_vecmul_flops_total",
		"Multiply-add operations performed by vector-matrix kernels.")
	metLastMulFlops = obs.Default().Gauge("hetesim_sparse_last_mul_flops",
		"Multiply-adds of the most recent SpGEMM call.")
	metLastMulNNZ = obs.Default().Gauge("hetesim_sparse_last_mul_nnz",
		"Nonzeros in the most recent SpGEMM result.")
)

// recordMul accounts one finished matrix-matrix multiply.
func recordMul(flops, outNNZ int, parallel bool) {
	metMulTotal.Inc()
	if parallel {
		metMulParallelTotal.Inc()
	}
	metMulFlops.Add(uint64(flops))
	metLastMulFlops.Set(float64(flops))
	metLastMulNNZ.Set(float64(outNNZ))
}
