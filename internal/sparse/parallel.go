package sparse

import (
	"runtime"
	"sort"
	"sync"
)

// parallelFlopThreshold is the estimated multiply-add count above which Mul
// fans out across cores. Below it, goroutine overhead dominates.
const parallelFlopThreshold = 1 << 21

// MulParallel returns m * b like Mul, computing disjoint row blocks on
// up to workers goroutines (0 means GOMAXPROCS). The result is identical
// to Mul — row blocks are independent, so parallelism does not perturb
// the output.
func (m *Matrix) MulParallel(b *Matrix, workers int) *Matrix {
	if m.cols != b.rows {
		panic("sparse: MulParallel shape mismatch")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m.rows {
		workers = m.rows
	}
	if workers <= 1 {
		return m.Mul(b)
	}
	type block struct {
		lo, hi int
		colIdx []int
		val    []float64
		rowNNZ []int
		flops  int
	}
	blocks := make([]block, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := m.rows * w / workers
		hi := m.rows * (w + 1) / workers
		blocks[w] = block{lo: lo, hi: hi, rowNNZ: make([]int, hi-lo)}
		wg.Add(1)
		go func(blk *block) {
			defer wg.Done()
			acc := make([]float64, b.cols)
			mark := make([]int, b.cols)
			cols := make([]int, 0, b.cols)
			for r := blk.lo; r < blk.hi; r++ {
				cols = cols[:0]
				for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
					j, av := m.colIdx[k], m.val[k]
					blk.flops += b.rowPtr[j+1] - b.rowPtr[j]
					for kb := b.rowPtr[j]; kb < b.rowPtr[j+1]; kb++ {
						c := b.colIdx[kb]
						if mark[c] != r+1 {
							mark[c] = r + 1
							acc[c] = 0
							cols = append(cols, c)
						}
						acc[c] += av * b.val[kb]
					}
				}
				sort.Ints(cols)
				n := 0
				for _, c := range cols {
					if acc[c] != 0 {
						blk.colIdx = append(blk.colIdx, c)
						blk.val = append(blk.val, acc[c])
						n++
					}
				}
				blk.rowNNZ[r-blk.lo] = n
			}
		}(&blocks[w])
	}
	wg.Wait()
	out := &Matrix{rows: m.rows, cols: b.cols, rowPtr: make([]int, m.rows+1)}
	total, flops := 0, 0
	for _, blk := range blocks {
		total += len(blk.val)
		flops += blk.flops
	}
	out.colIdx = make([]int, 0, total)
	out.val = make([]float64, 0, total)
	for _, blk := range blocks {
		for i, n := range blk.rowNNZ {
			out.rowPtr[blk.lo+i+1] = out.rowPtr[blk.lo+i] + n
		}
		out.colIdx = append(out.colIdx, blk.colIdx...)
		out.val = append(out.val, blk.val...)
	}
	recordMul(flops, total, true)
	return out
}

// MulAuto multiplies with Mul or MulParallel depending on the estimated
// work, so callers on large probability-matrix chains get parallel SpGEMM
// transparently.
func (m *Matrix) MulAuto(b *Matrix) *Matrix {
	// Estimate flops as Σ over entries of m of the matching row size in b.
	var flops int
	for r := 0; r < m.rows && flops < parallelFlopThreshold; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			j := m.colIdx[k]
			flops += b.rowPtr[j+1] - b.rowPtr[j]
		}
	}
	if flops >= parallelFlopThreshold {
		return m.MulParallel(b, 0)
	}
	return m.Mul(b)
}
