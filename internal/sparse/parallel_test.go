package sparse

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// TestMulParallelMatchesSerial checks the parallel SpGEMM against the
// serial kernel across shapes, densities, and worker counts — row blocks
// are independent, so the outputs must be bit-identical, not just close.
func TestMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct{ ar, ac, bc int }{
		{1, 1, 1},
		{3, 7, 5},
		{50, 40, 60},
		{128, 64, 128},
		{200, 100, 150},
	} {
		for _, density := range []float64{0.02, 0.2, 0.7} {
			a := randomMatrix(rng, tc.ar, tc.ac, density)
			b := randomMatrix(rng, tc.ac, tc.bc, density)
			want := a.Mul(b)
			for _, workers := range []int{0, 1, 2, 3, 8, tc.ar + 5} {
				got := a.MulParallel(b, workers)
				if !got.Equal(want) {
					t.Fatalf("MulParallel(%dx%d * %dx%d, density %g, workers %d) != Mul",
						tc.ar, tc.ac, tc.ac, tc.bc, density, workers)
				}
			}
		}
	}
}

// TestMulParallelEmptyOperands covers the degenerate inputs the blocked
// kernel must not trip over: all-zero operands and empty rows.
func TestMulParallelEmptyOperands(t *testing.T) {
	a := Zeros(10, 6)
	b := Zeros(6, 4)
	got := a.MulParallel(b, 4)
	if got.NNZ() != 0 {
		t.Errorf("zero * zero has %d nonzeros", got.NNZ())
	}
	if r, c := got.Dims(); r != 10 || c != 4 {
		t.Errorf("dims = %dx%d, want 10x4", r, c)
	}
}

func TestMulParallelShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	Zeros(3, 4).MulParallel(Zeros(5, 2), 2)
}

// TestMulAutoMatchesMul checks the dispatching wrapper picks an
// equivalent kernel on both sides of the flop threshold.
func TestMulAutoMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	small := randomMatrix(rng, 10, 10, 0.3)
	if !small.MulAuto(small).Equal(small.Mul(small)) {
		t.Error("MulAuto small != Mul")
	}
	// Dense enough that the flop estimate crosses parallelFlopThreshold
	// (n³d² multiply-adds ≫ 2²¹ at both sizes); short mode keeps the
	// -race pass in `make check` quick.
	n := 1300
	if testing.Short() {
		n = 400
	}
	big := randomMatrix(rng, n, n, 0.5)
	if !big.MulAuto(big).Equal(big.Mul(big)) {
		t.Error("MulAuto big != Mul")
	}
}

// TestMulParallelConcurrentStress hammers the parallel kernel from many
// goroutines sharing the same operands. Run under -race (make check
// covers this package) it verifies the row-blocked workers never write
// outside their block and the shared operands are read-only.
func TestMulParallelConcurrentStress(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 120
	if testing.Short() {
		n = 60
	}
	a := randomMatrix(rng, n, n, 0.15)
	b := randomMatrix(rng, n, n, 0.15)
	want := a.Mul(b)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 2*runtime.GOMAXPROCS(0); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if got := a.MulParallel(b, 1+(g+i)%5); !got.Equal(want) {
					errs <- "concurrent MulParallel diverged from serial Mul"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
