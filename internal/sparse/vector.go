package sparse

import (
	"fmt"
	"math"
	"sort"
)

// Vector is an immutable sparse vector. Indices are stored in strictly
// increasing order with no explicit zeros.
type Vector struct {
	n   int
	idx []int
	val []float64
}

// NewVector builds a sparse vector of length n from index/value pairs.
// Duplicate indices are summed; exact zeros are dropped.
func NewVector(n int, idx []int, val []float64) *Vector {
	if len(idx) != len(val) {
		panic("sparse: NewVector index/value length mismatch")
	}
	type pair struct {
		i int
		v float64
	}
	ps := make([]pair, 0, len(idx))
	for k, i := range idx {
		if i < 0 || i >= n {
			panic(fmt.Sprintf("sparse: vector index %d out of range for length %d", i, n))
		}
		ps = append(ps, pair{i, val[k]})
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].i < ps[b].i })
	v := &Vector{n: n}
	for _, p := range ps {
		if k := len(v.idx); k > 0 && v.idx[k-1] == p.i {
			v.val[k-1] += p.v
			continue
		}
		v.idx = append(v.idx, p.i)
		v.val = append(v.val, p.v)
	}
	// Drop zeros produced by cancellation.
	var di []int
	var dv []float64
	for k, x := range v.val {
		if x != 0 {
			di = append(di, v.idx[k])
			dv = append(dv, x)
		}
	}
	v.idx, v.val = di, dv
	return v
}

// Unit returns the length-n indicator vector e_i. It is the starting
// distribution of a single-source reachable-probability computation.
func Unit(n, i int) *Vector {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("sparse: Unit(%d) out of range for length %d", i, n))
	}
	return &Vector{n: n, idx: []int{i}, val: []float64{1}}
}

// FromDenseVector builds a sparse vector from a dense slice, dropping zeros.
func FromDenseVector(d []float64) *Vector {
	v := &Vector{n: len(d)}
	for i, x := range d {
		if x != 0 {
			v.idx = append(v.idx, i)
			v.val = append(v.val, x)
		}
	}
	return v
}

// Len returns the logical length of the vector.
func (v *Vector) Len() int { return v.n }

// NNZ returns the number of stored entries.
func (v *Vector) NNZ() int { return len(v.val) }

// At returns element i.
func (v *Vector) At(i int) float64 {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("sparse: vector At(%d) out of range for length %d", i, v.n))
	}
	k := sort.SearchInts(v.idx, i)
	if k < len(v.idx) && v.idx[k] == i {
		return v.val[k]
	}
	return 0
}

// Dense returns the vector as a dense slice.
func (v *Vector) Dense() []float64 {
	d := make([]float64, v.n)
	for k, i := range v.idx {
		d[i] = v.val[k]
	}
	return d
}

// Dot returns the inner product of v and w.
func (v *Vector) Dot(w *Vector) float64 {
	if v.n != w.n {
		panic("sparse: Dot length mismatch")
	}
	var s float64
	a, b := 0, 0
	for a < len(v.idx) && b < len(w.idx) {
		switch {
		case v.idx[a] < w.idx[b]:
			a++
		case w.idx[b] < v.idx[a]:
			b++
		default:
			s += v.val[a] * w.val[b]
			a++
			b++
		}
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v *Vector) Norm() float64 {
	var s float64
	for _, x := range v.val {
		s += x * x
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all entries.
func (v *Vector) Sum() float64 {
	var s float64
	for _, x := range v.val {
		s += x
	}
	return s
}

// Scale returns v multiplied by a.
func (v *Vector) Scale(a float64) *Vector {
	if a == 0 {
		return &Vector{n: v.n}
	}
	out := &Vector{n: v.n, idx: append([]int(nil), v.idx...), val: make([]float64, len(v.val))}
	for k, x := range v.val {
		out.val[k] = x * a
	}
	return out
}

// Add returns v + w.
func (v *Vector) Add(w *Vector) *Vector {
	if v.n != w.n {
		panic("sparse: Add length mismatch")
	}
	out := &Vector{n: v.n}
	a, b := 0, 0
	for a < len(v.idx) || b < len(w.idx) {
		switch {
		case b >= len(w.idx) || (a < len(v.idx) && v.idx[a] < w.idx[b]):
			out.idx = append(out.idx, v.idx[a])
			out.val = append(out.val, v.val[a])
			a++
		case a >= len(v.idx) || w.idx[b] < v.idx[a]:
			out.idx = append(out.idx, w.idx[b])
			out.val = append(out.val, w.val[b])
			b++
		default:
			s := v.val[a] + w.val[b]
			if s != 0 {
				out.idx = append(out.idx, v.idx[a])
				out.val = append(out.val, s)
			}
			a++
			b++
		}
	}
	return out
}

// MulMat returns v' * m as a new sparse vector of length m.Cols. This
// propagates a distribution over source objects one step along a relation.
func (v *Vector) MulMat(m *Matrix) *Vector {
	if v.n != m.rows {
		panic("sparse: MulMat length mismatch")
	}
	acc := make(map[int]float64, len(v.idx)*2)
	flops := 0
	for k, r := range v.idx {
		xv := v.val[k]
		flops += m.rowPtr[r+1] - m.rowPtr[r]
		for p := m.rowPtr[r]; p < m.rowPtr[r+1]; p++ {
			acc[m.colIdx[p]] += xv * m.val[p]
		}
	}
	metVecMulTotal.Inc()
	metVecMulFlops.Add(uint64(flops))
	out := &Vector{n: m.cols, idx: make([]int, 0, len(acc)), val: make([]float64, 0, len(acc))}
	for i := range acc {
		out.idx = append(out.idx, i)
	}
	sort.Ints(out.idx)
	for _, i := range out.idx {
		out.val = append(out.val, acc[i])
	}
	return out.compactZeros()
}

func (v *Vector) compactZeros() *Vector {
	var di []int
	var dv []float64
	for k, x := range v.val {
		if x != 0 {
			di = append(di, v.idx[k])
			dv = append(dv, x)
		}
	}
	v.idx, v.val = di, dv
	return v
}

// Cosine returns the cosine similarity of v and w, or 0 when either vector
// is zero. This is exactly the normalized HeteSim combination step
// (Definition 10).
func (v *Vector) Cosine(w *Vector) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	return v.Dot(w) / (nv * nw)
}

// Entries calls f for every stored entry in index order.
func (v *Vector) Entries(f func(i int, val float64)) {
	for k, i := range v.idx {
		f(i, v.val[k])
	}
}

// ApproxEqual reports whether v and w agree within absolute tolerance tol.
func (v *Vector) ApproxEqual(w *Vector, tol float64) bool {
	if v.n != w.n {
		return false
	}
	a, b := 0, 0
	for a < len(v.idx) || b < len(w.idx) {
		switch {
		case b >= len(w.idx) || (a < len(v.idx) && v.idx[a] < w.idx[b]):
			if math.Abs(v.val[a]) > tol {
				return false
			}
			a++
		case a >= len(v.idx) || w.idx[b] < v.idx[a]:
			if math.Abs(w.val[b]) > tol {
				return false
			}
			b++
		default:
			if math.Abs(v.val[a]-w.val[b]) > tol {
				return false
			}
			a++
			b++
		}
	}
	return true
}
