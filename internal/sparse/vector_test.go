package sparse

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewVectorMergesAndDrops(t *testing.T) {
	v := NewVector(5, []int{3, 1, 3, 2, 2}, []float64{1, 4, 2, 5, -5})
	if got := v.At(3); got != 3 {
		t.Errorf("At(3) = %v, want 3", got)
	}
	if got := v.At(2); got != 0 {
		t.Errorf("At(2) = %v, want 0 (cancelled)", got)
	}
	if v.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2", v.NNZ())
	}
}

func TestUnit(t *testing.T) {
	v := Unit(4, 2)
	if !reflect.DeepEqual(v.Dense(), []float64{0, 0, 1, 0}) {
		t.Errorf("Unit = %v", v.Dense())
	}
}

func TestVectorDotNormCosine(t *testing.T) {
	v := FromDenseVector([]float64{3, 0, 4})
	w := FromDenseVector([]float64{3, 5, 4})
	if got := v.Dot(w); got != 25 {
		t.Errorf("Dot = %v, want 25", got)
	}
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := v.Cosine(v); math.Abs(got-1) > 1e-12 {
		t.Errorf("Cosine(v,v) = %v, want 1", got)
	}
	zero := FromDenseVector([]float64{0, 0, 0})
	if got := v.Cosine(zero); got != 0 {
		t.Errorf("Cosine with zero vector = %v, want 0", got)
	}
}

func TestVectorAddScaleSum(t *testing.T) {
	v := FromDenseVector([]float64{1, 0, 2})
	w := FromDenseVector([]float64{-1, 3, 0})
	sum := v.Add(w)
	if !reflect.DeepEqual(sum.Dense(), []float64{0, 3, 2}) {
		t.Errorf("Add = %v", sum.Dense())
	}
	if sum.NNZ() != 2 {
		t.Errorf("Add kept cancelled zero: NNZ = %d", sum.NNZ())
	}
	if got := v.Scale(3).At(2); got != 6 {
		t.Errorf("Scale = %v, want 6", got)
	}
	if got := v.Scale(0).NNZ(); got != 0 {
		t.Errorf("Scale(0) NNZ = %d, want 0", got)
	}
	if got := v.Sum(); got != 3 {
		t.Errorf("Sum = %v, want 3", got)
	}
}

func TestVectorMulMatMatchesDense(t *testing.T) {
	m := FromDense([][]float64{{1, 2, 0}, {0, 3, 4}})
	v := FromDenseVector([]float64{10, 1})
	got := v.MulMat(m)
	if !reflect.DeepEqual(got.Dense(), []float64{10, 23, 4}) {
		t.Errorf("MulMat = %v", got.Dense())
	}
}

func TestVectorMulMatChainMatchesMatrixRow(t *testing.T) {
	// e_i' * (A*B) == (e_i' * A) * B: single-source propagation must agree
	// with a row of the fully materialized product.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomMatrix(r, 2+r.Intn(8), 2+r.Intn(8), 0.4)
		ar, ac := a.Dims()
		b := randomMatrix(r, ac, 2+r.Intn(8), 0.4)
		i := r.Intn(ar)
		viaVec := Unit(ar, i).MulMat(a).MulMat(b)
		viaMat := a.Mul(b).Row(i)
		return viaVec.ApproxEqual(viaMat, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestVectorEntriesOrder(t *testing.T) {
	v := NewVector(6, []int{4, 0, 2}, []float64{4, 0.5, 2})
	var idx []int
	v.Entries(func(i int, _ float64) { idx = append(idx, i) })
	if !reflect.DeepEqual(idx, []int{0, 2, 4}) {
		t.Errorf("Entries order = %v", idx)
	}
}

func TestVectorApproxEqual(t *testing.T) {
	v := FromDenseVector([]float64{1, 0, 2})
	w := FromDenseVector([]float64{1 + 1e-12, 0, 2})
	if !v.ApproxEqual(w, 1e-9) {
		t.Error("ApproxEqual too strict")
	}
	if v.ApproxEqual(FromDenseVector([]float64{1, 1, 2}), 1e-9) {
		t.Error("ApproxEqual missed difference")
	}
	if v.ApproxEqual(FromDenseVector([]float64{1, 0}), 1) {
		t.Error("ApproxEqual ignored length mismatch")
	}
}

func TestVectorOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVector(3, []int{3}, []float64{1})
}
