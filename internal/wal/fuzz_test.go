package wal

import (
	"bytes"
	"testing"

	"hetesim/internal/hin"
)

// FuzzWALDecode drives the pure decode surface (header parse + payload
// decode) with arbitrary bytes. Invariants: never panic, never accept a
// payload that is both a batch and a checkpoint, and — because the format
// is canonical with no optional or padding bytes — anything that decodes
// must re-encode to the identical byte string.
func FuzzWALDecode(f *testing.F) {
	f.Add(encodeHeader(testFP))
	if p, err := encodeBatch(Batch{Seq: 7, Key: "idem-1", Ops: testOpsF()}); err == nil {
		f.Add(p)
	}
	if p, err := encodeCheckpoint([]CheckpointEntry{{Key: "a", Seq: 1}, {Key: "b", Seq: 2}, {Key: "c", Seq: 9}}); err == nil {
		f.Add(p)
	}
	f.Add([]byte{recBatch, 0, 0})
	f.Add([]byte{recCheckpoint, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		ParseHeader(data) // must not panic on anything

		batch, entries, err := DecodePayload(data)
		if err != nil {
			return
		}
		if (batch != nil) == (entries != nil) && !(batch == nil && len(entries) == 0) {
			t.Fatalf("decode returned both or neither: batch=%v entries=%v", batch, entries)
		}
		var reenc []byte
		var eerr error
		if batch != nil {
			reenc, eerr = encodeBatch(*batch)
		} else {
			reenc, eerr = encodeCheckpoint(entries)
		}
		if eerr != nil {
			t.Fatalf("decoded value does not re-encode: %v", eerr)
		}
		if !bytes.Equal(reenc, data) {
			t.Fatalf("non-canonical decode: %x round-trips to %x", data, reenc)
		}
	})
}

func testOpsF() []hin.Op {
	return []hin.Op{
		{Kind: hin.OpUpsertEdge, Relation: "writes", Src: "Ann", Dst: "p7", Weight: 2.5},
		{Kind: hin.OpAddNode, Type: "term", ID: "graphs"},
		{Kind: hin.OpDeleteEdge, Relation: "writes", Src: "Bob", Dst: "p4"},
	}
}
