package wal

import (
	"bytes"
	"testing"

	"hetesim/internal/hin"
)

// FuzzWALDecode drives the pure decode surface (header parse + payload
// decode) with arbitrary bytes. Invariants: never panic, never accept a
// payload that is both a batch and a checkpoint, and — because the format
// is canonical with no optional or padding bytes — anything that decodes
// must re-encode to the identical byte string.
func FuzzWALDecode(f *testing.F) {
	f.Add(encodeHeader(testFP))
	if p, err := encodeBatch(Batch{Seq: 7, Key: "idem-1", Ops: testOpsF()}); err == nil {
		f.Add(p)
	}
	if p, err := encodeCheckpoint([]CheckpointEntry{{Key: "a", Seq: 1}, {Key: "b", Seq: 2}, {Key: "c", Seq: 9}}); err == nil {
		f.Add(p)
	}
	f.Add([]byte{recBatch, 0, 0})
	f.Add([]byte{recCheckpoint, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		ParseHeader(data) // must not panic on anything

		batch, entries, err := DecodePayload(data)
		if err != nil {
			return
		}
		if (batch != nil) == (entries != nil) && !(batch == nil && len(entries) == 0) {
			t.Fatalf("decode returned both or neither: batch=%v entries=%v", batch, entries)
		}
		var reenc []byte
		var eerr error
		if batch != nil {
			reenc, eerr = encodeBatch(*batch)
		} else {
			reenc, eerr = encodeCheckpoint(entries)
		}
		if eerr != nil {
			t.Fatalf("decoded value does not re-encode: %v", eerr)
		}
		if !bytes.Equal(reenc, data) {
			t.Fatalf("non-canonical decode: %x round-trips to %x", data, reenc)
		}
	})
}

// FuzzWALStreamDecode drives the replication stream decoder (the body of
// GET /v1/admin/wal) with arbitrary bytes. Seeds cover the interesting
// failure surface: truncations at header and record boundaries, CRC bit
// flips in header and payload, a fingerprint mismatch relative to the log
// seed (which must still decode — fingerprint gating is the follower's
// job, not the parser's), and a checkpoint record smuggled into a stream.
// Invariants: never panic; anything that decodes holds the format's
// declared properties (ascending seqs bounded by head) and — the format
// being canonical — re-encodes to the identical byte string.
func FuzzWALStreamDecode(f *testing.F) {
	mk := func(s Stream) []byte {
		b, err := EncodeStream(s)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	full := mk(Stream{Fingerprint: testFP, Head: 9, Batches: []Batch{
		{Seq: 3, Key: "idem-1", Ops: testOpsF()},
		{Seq: 4, Ops: testOpsF()[:1]},
		{Seq: 9, Key: "idem-2", Ops: testOpsF()[:2]},
	}})
	f.Add(full)
	f.Add(mk(Stream{Fingerprint: testFP, Head: 9}))        // caught-up pull
	f.Add(mk(Stream{Fingerprint: testFP ^ 0xff, Head: 9})) // fingerprint mismatch vs follower expectation
	f.Add(full[:streamHeaderSize])                         // header only, records truncated away
	f.Add(full[:streamHeaderSize-5])                       // torn header
	f.Add(full[:len(full)-1])                              // torn last record
	flip := func(i int) []byte {
		b := append([]byte(nil), full...)
		b[i] ^= 0x01
		return b
	}
	f.Add(flip(25))                   // header CRC flip
	f.Add(flip(streamHeaderSize + 5)) // payload flip → record CRC mismatch
	f.Add(flip(len(full) - 1))        // record CRC flip
	if p, err := encodeCheckpoint([]CheckpointEntry{{Key: "a", Seq: 1}}); err == nil {
		hdr := mk(Stream{Fingerprint: testFP, Head: 9})
		f.Add(append(append([]byte(nil), hdr...), frameRecord(p)...)) // checkpoint in stream
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeStream(data)
		if err != nil {
			return
		}
		prev := uint64(0)
		for _, b := range s.Batches {
			if b.Seq <= prev || b.Seq > s.Head {
				t.Fatalf("accepted stream violates seq invariants: %+v", s)
			}
			prev = b.Seq
		}
		reenc, eerr := EncodeStream(*s)
		if eerr != nil {
			t.Fatalf("decoded stream does not re-encode: %v", eerr)
		}
		if !bytes.Equal(reenc, data) {
			t.Fatalf("non-canonical decode: %x round-trips to %x", data, reenc)
		}
	})
}

func testOpsF() []hin.Op {
	return []hin.Op{
		{Kind: hin.OpUpsertEdge, Relation: "writes", Src: "Ann", Dst: "p7", Weight: 2.5},
		{Kind: hin.OpAddNode, Type: "term", ID: "graphs"},
		{Kind: hin.OpDeleteEdge, Relation: "writes", Src: "Bob", Dst: "p4"},
	}
}
