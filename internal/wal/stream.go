package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

var streamMagic = [4]byte{'H', 'W', 'T', 'S'}

// StreamVersion is the current replication stream format version.
const StreamVersion = 1

const streamHeaderSize = 28

// Stream is one replication pull — the body of GET /v1/admin/wal: the
// primary's identity and a bounded, strictly ascending run of batches.
//
// Wire layout (little-endian):
//
//	header  magic "HWTS" | version u32 | fingerprint u64 | head u64 |
//	        headerCRC u32 (CRC-32/IEEE of the 24 bytes above)
//	then    zero or more framed batch records (same framing and payload
//	        encoding as the on-disk log; checkpoint records are invalid)
//
// Fingerprint is the primary's serving-graph fingerprint after applying
// every batch through head; head is the primary's last assigned sequence at
// encode time. The stream may carry fewer batches than reach head (bounded
// pulls) — a follower compares fingerprints only once its own sequence
// equals head, which is the divergence check. Decode is strict and
// all-or-nothing: an HTTP body has no torn-tail story, so any framing or
// CRC failure rejects the whole stream rather than salvaging a prefix.
type Stream struct {
	Fingerprint uint64 // primary's serving-graph fingerprint as of Head
	Head        uint64 // primary's last assigned batch sequence at encode time
	Batches     []Batch
}

// EncodeStream serializes a replication pull. Batches must be strictly
// ascending by sequence and must not exceed Head — both invariants hold by
// construction on the primary and are enforced here so a buggy caller
// cannot emit a stream DecodeStream would reject.
func EncodeStream(s Stream) ([]byte, error) {
	out := make([]byte, 0, streamHeaderSize)
	out = append(out, streamMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, StreamVersion)
	out = binary.LittleEndian.AppendUint64(out, s.Fingerprint)
	out = binary.LittleEndian.AppendUint64(out, s.Head)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	prev := uint64(0)
	for i, b := range s.Batches {
		if b.Seq <= prev {
			return nil, fmt.Errorf("%w: stream batch %d seq %d not ascending (prev %d)", ErrCorrupt, i, b.Seq, prev)
		}
		if b.Seq > s.Head {
			return nil, fmt.Errorf("%w: stream batch %d seq %d past head %d", ErrCorrupt, i, b.Seq, s.Head)
		}
		prev = b.Seq
		payload, err := encodeBatch(b)
		if err != nil {
			return nil, err
		}
		out = append(out, frameRecord(payload)...)
	}
	return out, nil
}

// DecodeStream parses a replication stream with the same defensiveness as
// log replay — strict caps, allocation bounded by bytes present — but
// all-or-nothing: any framing error, CRC mismatch, checkpoint record,
// non-ascending sequence, or sequence past head is ErrCorrupt for the whole
// stream. A decoded stream re-encodes to the identical bytes (the format is
// canonical), which the fuzzer pins.
func DecodeStream(b []byte) (*Stream, error) {
	if len(b) < streamHeaderSize {
		return nil, fmt.Errorf("%w: %d stream header bytes, want %d", ErrCorrupt, len(b), streamHeaderSize)
	}
	if [4]byte(b[:4]) != streamMagic {
		return nil, fmt.Errorf("%w: stream magic %q", ErrCorrupt, b[:4])
	}
	if got := crc32.ChecksumIEEE(b[:24]); got != binary.LittleEndian.Uint32(b[24:28]) {
		return nil, fmt.Errorf("%w: stream header CRC mismatch", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(b[4:8]); v != StreamVersion {
		return nil, fmt.Errorf("%w: stream version %d, want %d", ErrCorrupt, v, StreamVersion)
	}
	s := &Stream{
		Fingerprint: binary.LittleEndian.Uint64(b[8:16]),
		Head:        binary.LittleEndian.Uint64(b[16:24]),
	}
	off := streamHeaderSize
	prev := uint64(0)
	for off < len(b) {
		payload, n, err := nextRecord(b[off:])
		if err != nil {
			return nil, fmt.Errorf("%w: stream offset %d: %v", ErrCorrupt, off, err)
		}
		batch, _, derr := DecodePayload(payload)
		if derr != nil {
			return nil, fmt.Errorf("%w: stream offset %d: %v", ErrCorrupt, off, derr)
		}
		if batch == nil {
			return nil, fmt.Errorf("%w: checkpoint record in replication stream", ErrCorrupt)
		}
		if batch.Seq <= prev {
			return nil, fmt.Errorf("%w: stream seq %d not ascending (prev %d)", ErrCorrupt, batch.Seq, prev)
		}
		if batch.Seq > s.Head {
			return nil, fmt.Errorf("%w: stream seq %d past head %d", ErrCorrupt, batch.Seq, s.Head)
		}
		prev = batch.Seq
		s.Batches = append(s.Batches, *batch)
		off += n
	}
	return s, nil
}
