package wal

import (
	"errors"
	"fmt"
)

// ErrCompacted marks a tail read whose starting sequence predates the
// retained floor: compaction folded those batches into the base graph, so
// the only way to catch up from there is a full resync (fetch the base,
// then re-follow from its sequence).
var ErrCompacted = errors.New("wal: compacted")

// MinRetained reports the smallest batch sequence a tail read can start
// from without ErrCompacted. Equal to LastSeq()+1 when the log holds no
// batches. Callers synchronize with appenders, as for LastSeq.
func (l *Log) MinRetained() uint64 { return l.minRetained }

// TailSince reads back up to maxBatches durable batches with sequence
// numbers >= fromSeq, in log order — the primary half of replication.
// fromSeq of 0 is treated as 1 (everything retained). A fromSeq below the
// retained floor returns ErrCompacted; a fromSeq past the last assigned
// sequence returns an empty tail. Checkpoint records are skipped: followers
// build their own idempotency tables from the batches themselves.
//
// The read re-scans the log file rather than caching decoded batches: tail
// reads are rare relative to appends (one poll per follower per interval,
// and the common caught-up poll exits before touching the file), and the
// file's valid prefix is exactly what Open would replay, so there is one
// source of truth. Callers synchronize with appenders (the server holds its
// write lock across the call).
func (l *Log) TailSince(fromSeq uint64, maxBatches int) ([]Batch, error) {
	if l.f == nil {
		return nil, ErrClosed
	}
	if fromSeq == 0 {
		fromSeq = 1
	}
	if fromSeq < l.minRetained {
		return nil, fmt.Errorf("%w: seq %d predates retained floor %d", ErrCompacted, fromSeq, l.minRetained)
	}
	if maxBatches <= 0 || fromSeq >= l.nextSeq {
		return nil, nil
	}
	data, err := readFile(l.fsys, l.path)
	if err != nil {
		return nil, fmt.Errorf("wal: tail read of %s: %w", l.path, err)
	}
	// Bound the scan to the durable prefix; bytes past l.size would only
	// exist if an in-flight append tore, and those are not acknowledged.
	if int64(len(data)) > l.size {
		data = data[:l.size]
	}
	if _, err := ParseHeader(data); err != nil {
		return nil, fmt.Errorf("wal: tail read of %s: %w", l.path, err)
	}
	var out []Batch
	off := headerSize
	for off < len(data) && len(out) < maxBatches {
		payload, n, rerr := nextRecord(data[off:])
		if rerr != nil {
			return nil, fmt.Errorf("wal: tail read of %s at offset %d: %w", l.path, off, rerr)
		}
		batch, _, derr := DecodePayload(payload)
		if derr != nil {
			return nil, fmt.Errorf("wal: tail read of %s at offset %d: %w", l.path, off, derr)
		}
		if batch != nil && batch.Seq >= fromSeq {
			out = append(out, *batch)
		}
		off += n
	}
	return out, nil
}
