package wal

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"hetesim/internal/snapshot"
)

func TestTailSinceBasics(t *testing.T) {
	l, _ := openFresh(t, snapshot.OS{})
	defer l.Close()

	if got, err := l.TailSince(1, 100); err != nil || len(got) != 0 {
		t.Fatalf("empty-log tail = %v, %v; want empty, nil", got, err)
	}
	if l.MinRetained() != 1 {
		t.Fatalf("fresh MinRetained = %d, want 1", l.MinRetained())
	}

	want := []Batch{
		{Seq: 1, Key: "k1", Ops: testOps(3)},
		{Seq: 2, Key: "k2", Ops: testOps(1)},
		{Seq: 3, Key: "k3", Ops: testOps(2)},
	}
	for _, b := range want {
		if _, err := l.Append(b.Key, b.Ops); err != nil {
			t.Fatal(err)
		}
	}
	// A checkpoint record interleaved with batches must be skipped.
	if err := l.AppendCheckpoint([]CheckpointEntry{{Key: "k1", Seq: 1}}); err != nil {
		t.Fatal(err)
	}

	got, err := l.TailSince(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TailSince(0) = %+v, want %+v", got, want)
	}
	if got, err = l.TailSince(2, 100); err != nil || !reflect.DeepEqual(got, want[1:]) {
		t.Fatalf("TailSince(2) = %+v, %v; want %+v", got, err, want[1:])
	}
	if got, err = l.TailSince(1, 2); err != nil || !reflect.DeepEqual(got, want[:2]) {
		t.Fatalf("TailSince(1, max 2) = %+v, %v; want %+v", got, err, want[:2])
	}
	if got, err = l.TailSince(4, 100); err != nil || len(got) != 0 {
		t.Fatalf("past-end tail = %v, %v; want empty, nil", got, err)
	}
}

func TestTailSinceCompacted(t *testing.T) {
	l, _ := openFresh(t, snapshot.OS{})
	defer l.Close()
	for i := 0; i < 3; i++ {
		if _, err := l.Append("", testOps(1)); err != nil {
			t.Fatal(err)
		}
	}
	// Compaction folds seqs 1..3 into the base; the floor moves to 4.
	if err := l.Reset(testFP+1, []CheckpointEntry{{Key: "k", Seq: 3}}); err != nil {
		t.Fatal(err)
	}
	if l.MinRetained() != 4 {
		t.Fatalf("post-reset MinRetained = %d, want 4", l.MinRetained())
	}
	if _, err := l.TailSince(3, 100); !errors.Is(err, ErrCompacted) {
		t.Fatalf("TailSince(3) after compaction = %v, want ErrCompacted", err)
	}
	if got, err := l.TailSince(4, 100); err != nil || len(got) != 0 {
		t.Fatalf("TailSince(4) = %v, %v; want empty, nil", got, err)
	}
	// New appends continue the sequence and are tailable again.
	seq, err := l.Append("k4", testOps(2))
	if err != nil || seq != 4 {
		t.Fatalf("post-reset Append = %d, %v; want 4, nil", seq, err)
	}
	got, err := l.TailSince(4, 100)
	if err != nil || len(got) != 1 || got[0].Seq != 4 {
		t.Fatalf("TailSince(4) = %+v, %v; want one batch at seq 4", got, err)
	}
}

func TestTailSinceSurvivesReopen(t *testing.T) {
	l, path := openFresh(t, snapshot.OS{})
	for i := 0; i < 2; i++ {
		if _, err := l.Append("", testOps(1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(testFP, []CheckpointEntry{{Key: "k", Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append("k3", testOps(1)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, _, err := Open(snapshot.OS{}, path, testFP)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.MinRetained() != 3 {
		t.Fatalf("reopened MinRetained = %d, want 3", l2.MinRetained())
	}
	if _, err := l2.TailSince(2, 100); !errors.Is(err, ErrCompacted) {
		t.Fatalf("reopened TailSince(2) = %v, want ErrCompacted", err)
	}
	got, err := l2.TailSince(3, 100)
	if err != nil || len(got) != 1 || got[0].Seq != 3 || got[0].Key != "k3" {
		t.Fatalf("reopened TailSince(3) = %+v, %v", got, err)
	}
}

func TestAppendBatchAssignedSeq(t *testing.T) {
	l, path := openFresh(t, snapshot.OS{})
	// Follower records primary-assigned sequences verbatim.
	for _, seq := range []uint64{1, 2, 3} {
		if err := l.AppendBatch(Batch{Seq: seq, Key: "", Ops: testOps(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if l.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d, want 3", l.LastSeq())
	}
	// Regression is a programmer error, not a silent overwrite.
	if err := l.AppendBatch(Batch{Seq: 2, Ops: testOps(1)}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("regressing AppendBatch = %v, want ErrCorrupt", err)
	}
	l.Close()

	l2, rep, err := Open(snapshot.OS{}, path, testFP)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rep.Batches) != 3 || l2.LastSeq() != 3 {
		t.Fatalf("replay = %d batches, LastSeq %d; want 3, 3", len(rep.Batches), l2.LastSeq())
	}
}

func TestStreamRoundTrip(t *testing.T) {
	in := Stream{
		Fingerprint: testFP,
		Head:        7,
		Batches: []Batch{
			{Seq: 2, Key: "k2", Ops: testOps(3)},
			{Seq: 5, Key: "", Ops: testOps(1)},
			{Seq: 7, Key: "k7", Ops: testOps(2)},
		},
	}
	b, err := EncodeStream(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeStream(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*out, in) {
		t.Fatalf("round trip = %+v, want %+v", *out, in)
	}
	again, err := EncodeStream(*out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, b) {
		t.Fatal("re-encode is not canonical")
	}

	// Empty pulls (caught-up follower) are valid streams.
	b, err = EncodeStream(Stream{Fingerprint: testFP, Head: 7})
	if err != nil {
		t.Fatal(err)
	}
	out, err = DecodeStream(b)
	if err != nil || out.Head != 7 || out.Fingerprint != testFP || len(out.Batches) != 0 {
		t.Fatalf("empty stream round trip = %+v, %v", out, err)
	}
}

func TestStreamDecodeRejects(t *testing.T) {
	good, err := EncodeStream(Stream{
		Fingerprint: testFP,
		Head:        3,
		Batches:     []Batch{{Seq: 1, Ops: testOps(1)}, {Seq: 3, Ops: testOps(2)}},
	})
	if err != nil {
		t.Fatal(err)
	}

	flip := func(i int) []byte {
		b := append([]byte(nil), good...)
		b[i] ^= 0x40
		return b
	}
	cases := map[string][]byte{
		"short header":    good[:streamHeaderSize-1],
		"bad magic":       flip(0),
		"header crc":      flip(8),
		"truncated body":  good[:len(good)-3],
		"body crc":        flip(len(good) - 2),
		"record bit flip": flip(streamHeaderSize + 6),
	}
	for name, b := range cases {
		if _, err := DecodeStream(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: DecodeStream = %v, want ErrCorrupt", name, err)
		}
	}

	// Encoder refuses invariant-breaking streams.
	if _, err := EncodeStream(Stream{Head: 2, Batches: []Batch{{Seq: 3, Ops: testOps(1)}}}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("seq past head: EncodeStream = %v, want ErrCorrupt", err)
	}
	if _, err := EncodeStream(Stream{Head: 5, Batches: []Batch{{Seq: 3, Ops: testOps(1)}, {Seq: 3, Ops: testOps(1)}}}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("non-ascending: EncodeStream = %v, want ErrCorrupt", err)
	}
}
