// Package wal is the durability half of the mutation subsystem: a
// CRC-framed, length-prefixed append-only log of graph deltas. Every
// acknowledged mutation batch is fsynced to the log before the engine
// applies it, so warm restart is base graph + log replay — the delta
// snapshot story — and a crash at any byte leaves a log whose valid prefix
// is exactly the set of acknowledged batches.
//
// Layout (little-endian):
//
//	header  magic "HWAL" | version u32 | baseFingerprint u64 |
//	        headerCRC u32 (CRC-32/IEEE of the 16 bytes above)
//	record  payloadLen u32 | payload | payloadCRC u32 (CRC-32/IEEE of payload)
//
// A record payload begins with a kind byte: a mutation batch (sequence
// number, idempotency key, ops) or an idempotency checkpoint — (key,
// acked sequence) pairs written when compaction resets the log, so key
// dedup and the original ack sequences survive the base graph absorbing
// the batches that carried them. A checkpoint larger than one record's
// budget is split across consecutive records. Decode mirrors
// internal/snapshot's defensiveness — strict caps on every length prefix,
// allocation bounded by bytes actually present — and replay truncates the
// log at the first torn or corrupt record rather than guessing past it.
//
// The log is bound to the graph file it deltas by fingerprint. A log whose
// header names a different base is set aside (renamed, never deleted:
// it may hold acknowledged mutations that an operator swap of the graph
// file orphaned) and a fresh log is started.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"hetesim/internal/hin"
	"hetesim/internal/snapshot"
)

// ErrCorrupt marks log bytes that failed structural validation. During
// replay it is handled internally (torn-tail truncation); Append and Reset
// surface it only for programmer errors such as oversized batches.
var ErrCorrupt = errors.New("wal: corrupt")

// ErrClosed marks use of a log whose append handle is gone — closed, or
// poisoned by an append failure that could not be rolled back.
var ErrClosed = errors.New("wal: log closed")

var headerMagic = [4]byte{'H', 'W', 'A', 'L'}

// Version is the current log format version.
const Version = 1

const (
	headerSize = 20
	frameSize  = 8 // payloadLen u32 + payloadCRC u32

	maxPayload = 1 << 24 // cap on a record's length prefix (16 MiB)
	maxOps     = 1 << 20 // cap on a batch's op count
	maxKeys    = 1 << 20 // cap on one checkpoint record's entry count
	maxString  = 1<<16 - 1

	// checkpointChunkBytes bounds one checkpoint record's payload; a
	// larger entry set is split across consecutive records so no key-table
	// size can make a checkpoint unwritable.
	checkpointChunkBytes = 1 << 22
)

// Record kinds (first payload byte).
const (
	recBatch      = 0x00
	recCheckpoint = 0x01
)

// Batch is one acknowledged mutation: a monotonic sequence number, the
// client's idempotency key, and the graph deltas.
type Batch struct {
	Seq uint64
	Key string
	Ops []hin.Op
}

// CheckpointEntry carries one idempotency key and the sequence number its
// batch was originally acked with across a compaction, so a post-compaction
// duplicate answers with the real ack sequence, not a placeholder.
type CheckpointEntry struct {
	Key string
	Seq uint64
}

// Replay is what Open recovered from an existing log.
type Replay struct {
	// Batches holds every durable batch in append order. Duplicated
	// idempotency keys are preserved — dedup is the applier's job.
	Batches []Batch
	// Checkpoint holds idempotency keys (with their original ack
	// sequences) carried over from before the last compaction; they seed
	// the applier's dedup set.
	Checkpoint []CheckpointEntry
	// TruncatedBytes counts torn-tail bytes discarded from the log, for
	// loud logging. Zero on a clean log.
	TruncatedBytes int64
	// SetAside is non-empty when an unusable log (corrupt header or wrong
	// base fingerprint) was renamed out of the way; it names the preserved
	// file.
	SetAside string
	// SetAsideReason says why, when SetAside is non-empty.
	SetAsideReason string
}

// Log is an open write-ahead log positioned for appending.
type Log struct {
	fsys        snapshot.FS
	path        string
	fingerprint uint64

	f       snapshot.File // append handle; nil when closed/poisoned
	size    int64         // bytes of valid, synced log
	nextSeq uint64
	// minRetained is the smallest batch sequence still present in the log
	// file — the tail-read floor. Equal to nextSeq when the log holds no
	// batches (fresh, or every batch folded into the base by compaction).
	minRetained uint64
}

// Open binds (creating if absent) the log at path to the graph identified
// by baseFingerprint and replays it. Torn tails are truncated in place; a
// log for a different base or with an unreadable header is renamed to
// path+".stale" and a fresh log is started — see Replay for what happened.
func Open(fsys snapshot.FS, path string, baseFingerprint uint64) (*Log, *Replay, error) {
	rep := &Replay{}
	l := &Log{fsys: fsys, path: path, fingerprint: baseFingerprint, nextSeq: 1, minRetained: 1}

	data, err := readFile(fsys, path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		data = nil
	case err != nil:
		return nil, nil, fmt.Errorf("wal: reading %s: %w", path, err)
	}

	if data != nil {
		fp, herr := ParseHeader(data)
		if herr != nil || fp != baseFingerprint {
			reason := "corrupt header"
			if herr == nil {
				reason = fmt.Sprintf("base fingerprint %016x, want %016x", fp, baseFingerprint)
			}
			aside := path + ".stale"
			if rerr := fsys.Rename(path, aside); rerr != nil {
				return nil, nil, fmt.Errorf("wal: setting aside unusable log (%s): %w", reason, rerr)
			}
			if serr := fsys.SyncDir(filepath.Dir(path)); serr != nil {
				return nil, nil, fmt.Errorf("wal: syncing directory after set-aside: %w", serr)
			}
			rep.SetAside, rep.SetAsideReason = aside, reason
			data = nil
		}
	}

	if data == nil {
		if err := l.create(); err != nil {
			return nil, nil, err
		}
		return l, rep, nil
	}

	valid := int64(headerSize)
	off := headerSize
	for off < len(data) {
		payload, n, rerr := nextRecord(data[off:])
		if rerr != nil {
			break // torn or corrupt tail: truncate from here
		}
		batch, entries, derr := DecodePayload(payload)
		if derr != nil {
			break
		}
		if batch != nil {
			if len(rep.Batches) == 0 {
				l.minRetained = batch.Seq
			}
			rep.Batches = append(rep.Batches, *batch)
			if batch.Seq >= l.nextSeq {
				l.nextSeq = batch.Seq + 1
			}
		} else {
			rep.Checkpoint = append(rep.Checkpoint, entries...)
			// Sequences are monotonic across compactions; a checkpointed
			// ack must never be reissued to a new batch.
			for _, e := range entries {
				if e.Seq >= l.nextSeq {
					l.nextSeq = e.Seq + 1
				}
			}
		}
		off += n
		valid = int64(off)
	}
	if valid < int64(len(data)) {
		rep.TruncatedBytes = int64(len(data)) - valid
		if err := fsys.Truncate(path, valid); err != nil {
			return nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
	}
	l.size = valid
	if len(rep.Batches) == 0 {
		l.minRetained = l.nextSeq // only checkpoints survive: tail starts at the next assignment
	}

	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening %s for append: %w", path, err)
	}
	l.f = f
	return l, rep, nil
}

// create writes a fresh header-only log durably at l.path.
func (l *Log) create() error {
	f, err := l.fsys.OpenAppend(l.path)
	if err != nil {
		return fmt.Errorf("wal: creating %s: %w", l.path, err)
	}
	hdr := encodeHeader(l.fingerprint)
	if err := writeSync(f, hdr); err != nil {
		f.Close()
		l.fsys.Remove(l.path)
		return fmt.Errorf("wal: writing header of %s: %w", l.path, err)
	}
	if err := l.fsys.SyncDir(filepath.Dir(l.path)); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing directory of %s: %w", l.path, err)
	}
	l.f, l.size = f, int64(len(hdr))
	return nil
}

// Append logs a mutation batch durably: the record is written and fsynced
// before Append returns, so a nil error means the batch survives any crash.
// The assigned sequence number is returned. On a failed or torn write the
// log file is rolled back to its last good length; if even that fails the
// log is poisoned and every later Append returns ErrClosed.
func (l *Log) Append(key string, ops []hin.Op) (uint64, error) {
	if l.f == nil {
		return 0, ErrClosed
	}
	seq := l.nextSeq
	return seq, l.AppendBatch(Batch{Seq: seq, Key: key, Ops: ops})
}

// AppendBatch logs a batch at its already-assigned sequence number — the
// follower half of replication, where the primary assigned the sequence and
// the follower must record it verbatim so /readyz freshness and later tail
// reads line up fleet-wide. Sequences must not regress; gaps are allowed at
// this layer (the server enforces contiguity before applying). Durability
// contract matches Append.
func (l *Log) AppendBatch(b Batch) error {
	if l.f == nil {
		return ErrClosed
	}
	if b.Seq < l.nextSeq {
		return fmt.Errorf("%w: batch seq %d regresses below next seq %d", ErrCorrupt, b.Seq, l.nextSeq)
	}
	payload, err := encodeBatch(b)
	if err != nil {
		return err
	}
	return l.appendRecord(payload, func() {
		if l.minRetained == l.nextSeq && b.Seq > l.minRetained {
			// The log held no batches and this one opens a gap after a
			// compaction horizon: the retained tail starts here.
			l.minRetained = b.Seq
		}
		l.nextSeq = b.Seq + 1
	})
}

// AppendCheckpoint logs an idempotency checkpoint with the same
// durability contract as Append. Oversized entry sets are split across
// consecutive records; replay concatenates them back.
func (l *Log) AppendCheckpoint(entries []CheckpointEntry) error {
	if l.f == nil {
		return ErrClosed
	}
	payloads, err := encodeCheckpoints(entries)
	if err != nil {
		return err
	}
	for _, payload := range payloads {
		if err := l.appendRecord(payload, func() {}); err != nil {
			return err
		}
	}
	return nil
}

func (l *Log) appendRecord(payload []byte, commit func()) error {
	rec := frameRecord(payload)
	if err := writeSync(l.f, rec); err != nil {
		// Roll the file back to its last good length so the torn record
		// cannot precede a later, healthy one.
		if terr := l.fsys.Truncate(l.path, l.size); terr != nil {
			l.f.Close()
			l.f = nil
			return fmt.Errorf("wal: append failed (%v) and rollback failed, log closed: %w", err, terr)
		}
		return fmt.Errorf("wal: appending record: %w", err)
	}
	l.size += int64(len(rec))
	commit()
	return nil
}

// Reset atomically replaces the log with a fresh one bound to
// newFingerprint, carrying entries as checkpoint records (split across
// several when oversized) — the log half of compaction, called after the
// mutated graph has durably become the new base. The swap is temp + fsync
// + rename + dir sync, so a crash leaves either the old log (stale
// fingerprint, set aside at next boot after the base already absorbed it)
// or the new one. Sequence numbering continues: an ack sequence issued
// before the reset is never reused after it.
func (l *Log) Reset(newFingerprint uint64, entries []CheckpointEntry) error {
	if l.f == nil {
		return ErrClosed
	}
	payloads, err := encodeCheckpoints(entries)
	if err != nil {
		return err
	}
	buf := append([]byte(nil), encodeHeader(newFingerprint)...)
	for _, payload := range payloads {
		buf = append(buf, frameRecord(payload)...)
	}

	dir := filepath.Dir(l.path)
	tmp, err := l.fsys.CreateTemp(dir, filepath.Base(l.path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: creating temp log: %w", err)
	}
	tmpName := tmp.Name()
	if err := writeSync(tmp, buf); err != nil {
		tmp.Close()
		l.fsys.Remove(tmpName)
		return fmt.Errorf("wal: writing temp log: %w", err)
	}
	if err := tmp.Close(); err != nil {
		l.fsys.Remove(tmpName)
		return fmt.Errorf("wal: closing temp log: %w", err)
	}
	if err := l.fsys.Rename(tmpName, l.path); err != nil {
		l.fsys.Remove(tmpName)
		return fmt.Errorf("wal: renaming new log into place: %w", err)
	}
	if err := l.fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: syncing directory: %w", err)
	}

	old := l.f
	l.f = nil
	old.Close()
	f, err := l.fsys.OpenAppend(l.path)
	if err != nil {
		return fmt.Errorf("wal: reopening %s after reset: %w", l.path, err)
	}
	l.f = f
	l.size = int64(len(buf))
	l.fingerprint = newFingerprint
	l.minRetained = l.nextSeq // every batch below nextSeq is now folded into the base
	return nil
}

// Size reports the current durable log length in bytes — the compaction
// trigger input.
func (l *Log) Size() int64 { return l.size }

// Fingerprint reports the base-graph fingerprint the log is bound to.
func (l *Log) Fingerprint() uint64 { return l.fingerprint }

// LastSeq reports the sequence number of the most recently assigned batch,
// 0 when nothing has ever been appended. Sequences are monotonic across
// compactions and reloads, so this is the replica-freshness rank /readyz
// exposes. Callers synchronize with appenders (the server reads it under
// its write lock or caches it atomically).
func (l *Log) LastSeq() uint64 { return l.nextSeq - 1 }

// Close releases the append handle. Further appends return ErrClosed.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	return f.Close()
}

func writeSync(f snapshot.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	return f.Sync()
}

func readFile(fsys snapshot.FS, path string) ([]byte, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

func encodeHeader(fingerprint uint64) []byte {
	hdr := make([]byte, headerSize)
	copy(hdr, headerMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	binary.LittleEndian.PutUint64(hdr[8:16], fingerprint)
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(hdr[:16]))
	return hdr
}

// ParseHeader validates a log header and returns the base fingerprint it
// names. Exposed (with DecodePayload) as a pure function over bytes so the
// fuzzer can drive the whole decode surface without a filesystem.
func ParseHeader(b []byte) (uint64, error) {
	if len(b) < headerSize {
		return 0, fmt.Errorf("%w: %d header bytes, want %d", ErrCorrupt, len(b), headerSize)
	}
	if [4]byte(b[:4]) != headerMagic {
		return 0, fmt.Errorf("%w: header magic %q", ErrCorrupt, b[:4])
	}
	if got := crc32.ChecksumIEEE(b[:16]); got != binary.LittleEndian.Uint32(b[16:20]) {
		return 0, fmt.Errorf("%w: header CRC mismatch", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(b[4:8]); v != Version {
		return 0, fmt.Errorf("%w: format version %d, want %d", ErrCorrupt, v, Version)
	}
	return binary.LittleEndian.Uint64(b[8:16]), nil
}

// nextRecord frames one record off the front of b, returning its payload
// and total framed length. Any shortfall or CRC mismatch is ErrCorrupt —
// the replay loop treats it as the torn tail.
func nextRecord(b []byte) ([]byte, int, error) {
	if len(b) < 4 {
		return nil, 0, fmt.Errorf("%w: short length prefix", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(b)
	if n == 0 || n > maxPayload {
		return nil, 0, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, n)
	}
	total := 4 + int(n) + 4
	if len(b) < total {
		return nil, 0, fmt.Errorf("%w: truncated record", ErrCorrupt)
	}
	payload := b[4 : 4+n]
	want := binary.LittleEndian.Uint32(b[4+n:])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, 0, fmt.Errorf("%w: record CRC mismatch", ErrCorrupt)
	}
	return payload, total, nil
}

func frameRecord(payload []byte) []byte {
	rec := make([]byte, 0, len(payload)+frameSize)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	return binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
}

func encodeBatch(b Batch) ([]byte, error) {
	if len(b.Key) > maxString {
		return nil, fmt.Errorf("%w: idempotency key longer than %d bytes", ErrCorrupt, maxString)
	}
	if len(b.Ops) == 0 || len(b.Ops) > maxOps {
		return nil, fmt.Errorf("%w: batch of %d ops (want 1..%d)", ErrCorrupt, len(b.Ops), maxOps)
	}
	out := []byte{recBatch}
	out = binary.LittleEndian.AppendUint64(out, b.Seq)
	out, err := appendString(out, b.Key)
	if err != nil {
		return nil, err
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.Ops)))
	for _, op := range b.Ops {
		out = append(out, byte(op.Kind))
		switch op.Kind {
		case hin.OpAddNode:
			if out, err = appendStrings(out, op.Type, op.ID); err != nil {
				return nil, err
			}
		case hin.OpUpsertEdge:
			if out, err = appendStrings(out, op.Relation, op.Src, op.Dst); err != nil {
				return nil, err
			}
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(op.Weight))
		case hin.OpDeleteEdge:
			if out, err = appendStrings(out, op.Relation, op.Src, op.Dst); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: op kind %d", ErrCorrupt, op.Kind)
		}
	}
	if len(out) > maxPayload {
		return nil, fmt.Errorf("%w: batch payload %d bytes exceeds cap %d", ErrCorrupt, len(out), maxPayload)
	}
	return out, nil
}

func encodeCheckpoint(entries []CheckpointEntry) ([]byte, error) {
	if len(entries) > maxKeys {
		return nil, fmt.Errorf("%w: checkpoint of %d entries exceeds cap %d", ErrCorrupt, len(entries), maxKeys)
	}
	out := []byte{recCheckpoint}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(entries)))
	var err error
	for _, e := range entries {
		out = binary.LittleEndian.AppendUint64(out, e.Seq)
		if out, err = appendString(out, e.Key); err != nil {
			return nil, err
		}
	}
	if len(out) > maxPayload {
		return nil, fmt.Errorf("%w: checkpoint payload %d bytes exceeds cap %d", ErrCorrupt, len(out), maxPayload)
	}
	return out, nil
}

// encodeCheckpoints splits entries into records, each within the chunk
// budget and entry cap, and encodes them. An empty entry set encodes to a
// single empty checkpoint record, so a reset log still proves on replay
// that its key table is intentionally empty.
func encodeCheckpoints(entries []CheckpointEntry) ([][]byte, error) {
	var payloads [][]byte
	for {
		chunk := entries
		bytes := 0
		for i, e := range entries {
			if len(e.Key) > maxString {
				return nil, fmt.Errorf("%w: idempotency key of %d bytes exceeds cap %d", ErrCorrupt, len(e.Key), maxString)
			}
			bytes += 8 + 2 + len(e.Key)
			if (bytes > checkpointChunkBytes || i >= maxKeys) && i > 0 {
				chunk = entries[:i]
				break
			}
		}
		payload, err := encodeCheckpoint(chunk)
		if err != nil {
			return nil, err
		}
		payloads = append(payloads, payload)
		entries = entries[len(chunk):]
		if len(entries) == 0 {
			return payloads, nil
		}
	}
}

// DecodePayload parses a record payload into either a mutation batch or a
// checkpoint entry list (exactly one return is non-nil on success). It is
// strict: unknown kinds, over-cap counts, and trailing bytes are all
// ErrCorrupt, and allocation is bounded by the bytes actually present.
func DecodePayload(p []byte) (*Batch, []CheckpointEntry, error) {
	if len(p) == 0 || len(p) > maxPayload {
		return nil, nil, fmt.Errorf("%w: payload of %d bytes", ErrCorrupt, len(p))
	}
	kind, p := p[0], p[1:]
	switch kind {
	case recBatch:
		b, err := decodeBatch(p)
		return b, nil, err
	case recCheckpoint:
		entries, err := decodeCheckpoint(p)
		return nil, entries, err
	}
	return nil, nil, fmt.Errorf("%w: record kind %#x", ErrCorrupt, kind)
}

func decodeBatch(p []byte) (*Batch, error) {
	if len(p) < 8 {
		return nil, fmt.Errorf("%w: short batch header", ErrCorrupt)
	}
	b := &Batch{Seq: binary.LittleEndian.Uint64(p)}
	p = p[8:]
	var err error
	if b.Key, p, err = takeString(p); err != nil {
		return nil, fmt.Errorf("%w: batch key: %v", ErrCorrupt, err)
	}
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: short op count", ErrCorrupt)
	}
	count := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if count == 0 || count > maxOps {
		return nil, fmt.Errorf("%w: implausible op count %d", ErrCorrupt, count)
	}
	// Each op is at least 3 bytes; reject counts the payload cannot hold
	// before allocating for them.
	if uint64(count)*3 > uint64(len(p)) {
		return nil, fmt.Errorf("%w: %d ops cannot fit in %d bytes", ErrCorrupt, count, len(p))
	}
	b.Ops = make([]hin.Op, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(p) < 1 {
			return nil, fmt.Errorf("%w: short op %d", ErrCorrupt, i)
		}
		op := hin.Op{Kind: hin.OpKind(p[0])}
		p = p[1:]
		switch op.Kind {
		case hin.OpAddNode:
			if op.Type, p, err = takeString(p); err == nil {
				op.ID, p, err = takeString(p)
			}
		case hin.OpUpsertEdge:
			if op.Relation, op.Src, op.Dst, p, err = takeStrings3(p); err == nil {
				if len(p) < 8 {
					err = errors.New("short weight")
				} else {
					op.Weight = math.Float64frombits(binary.LittleEndian.Uint64(p))
					p = p[8:]
				}
			}
		case hin.OpDeleteEdge:
			op.Relation, op.Src, op.Dst, p, err = takeStrings3(p)
		default:
			err = fmt.Errorf("unknown kind %d", op.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: op %d: %v", ErrCorrupt, i, err)
		}
		b.Ops = append(b.Ops, op)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrCorrupt, len(p))
	}
	return b, nil
}

func decodeCheckpoint(p []byte) ([]CheckpointEntry, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: short checkpoint header", ErrCorrupt)
	}
	count := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if count > maxKeys {
		return nil, fmt.Errorf("%w: implausible entry count %d", ErrCorrupt, count)
	}
	// Each entry is at least 10 bytes (seq u64 + key length prefix).
	if uint64(count)*10 > uint64(len(p)) {
		return nil, fmt.Errorf("%w: %d entries cannot fit in %d bytes", ErrCorrupt, count, len(p))
	}
	entries := make([]CheckpointEntry, 0, count)
	var err error
	for i := uint32(0); i < count; i++ {
		if len(p) < 8 {
			return nil, fmt.Errorf("%w: short entry %d", ErrCorrupt, i)
		}
		e := CheckpointEntry{Seq: binary.LittleEndian.Uint64(p)}
		p = p[8:]
		if e.Key, p, err = takeString(p); err != nil {
			return nil, fmt.Errorf("%w: entry %d key: %v", ErrCorrupt, i, err)
		}
		entries = append(entries, e)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after checkpoint", ErrCorrupt, len(p))
	}
	return entries, nil
}

func appendString(out []byte, s string) ([]byte, error) {
	if len(s) > maxString {
		return nil, fmt.Errorf("%w: string of %d bytes exceeds cap %d", ErrCorrupt, len(s), maxString)
	}
	out = binary.LittleEndian.AppendUint16(out, uint16(len(s)))
	return append(out, s...), nil
}

func appendStrings(out []byte, ss ...string) ([]byte, error) {
	var err error
	for _, s := range ss {
		if out, err = appendString(out, s); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func takeString(p []byte) (string, []byte, error) {
	if len(p) < 2 {
		return "", nil, errors.New("short string length")
	}
	n := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if len(p) < n {
		return "", nil, errors.New("short string")
	}
	return string(p[:n]), p[n:], nil
}

func takeStrings3(p []byte) (a, b, c string, rest []byte, err error) {
	if a, p, err = takeString(p); err != nil {
		return
	}
	if b, p, err = takeString(p); err != nil {
		return
	}
	c, rest, err = takeString(p)
	return
}
