package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hetesim/internal/chaos"
	"hetesim/internal/hin"
	"hetesim/internal/snapshot"
)

const testFP = uint64(0xfeedc0dedeadbeef)

func testOps(n int) []hin.Op {
	ops := []hin.Op{
		{Kind: hin.OpUpsertEdge, Relation: "writes", Src: "Ann", Dst: "p7", Weight: 2.5},
		{Kind: hin.OpAddNode, Type: "term", ID: "graphs"},
		{Kind: hin.OpDeleteEdge, Relation: "writes", Src: "Bob", Dst: "p4"},
	}
	return ops[:n]
}

func openFresh(t *testing.T, fsys snapshot.FS) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "graph.wal")
	l, rep, err := Open(fsys, path, testFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Batches) != 0 || rep.TruncatedBytes != 0 || rep.SetAside != "" {
		t.Fatalf("fresh log replay = %+v", rep)
	}
	return l, path
}

func TestAppendReplayRoundTrip(t *testing.T) {
	l, path := openFresh(t, snapshot.OS{})
	want := []Batch{
		{Seq: 1, Key: "k1", Ops: testOps(3)},
		{Seq: 2, Key: "k2", Ops: testOps(1)},
		{Seq: 3, Key: "k2", Ops: testOps(2)}, // duplicate key: log preserves it
	}
	for _, b := range want {
		seq, err := l.Append(b.Key, b.Ops)
		if err != nil {
			t.Fatal(err)
		}
		if seq != b.Seq {
			t.Fatalf("assigned seq %d, want %d", seq, b.Seq)
		}
	}
	size := l.Size()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rep, err := Open(snapshot.OS{}, path, testFP)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !reflect.DeepEqual(rep.Batches, want) {
		t.Fatalf("replayed %+v, want %+v", rep.Batches, want)
	}
	if rep.TruncatedBytes != 0 || len(rep.Checkpoint) != 0 {
		t.Fatalf("replay side state = %+v", rep)
	}
	if l2.Size() != size {
		t.Fatalf("size after reopen = %d, want %d", l2.Size(), size)
	}
	// Sequence numbering continues past the replayed batches.
	if seq, err := l2.Append("k3", testOps(1)); err != nil || seq != 4 {
		t.Fatalf("post-replay append seq = %d, %v; want 4", seq, err)
	}
}

// Every possible truncation point of a multi-batch log must replay to a
// whole-batch prefix — the torn record, wherever the tear lands, is
// discarded and the file truncated back to the last durable batch.
func TestTornTailEveryOffset(t *testing.T) {
	l, path := openFresh(t, snapshot.OS{})
	want := []Batch{
		{Seq: 1, Key: "a", Ops: testOps(3)},
		{Seq: 2, Key: "b", Ops: testOps(2)},
		{Seq: 3, Key: "c", Ops: testOps(1)},
	}
	boundaries := []int64{l.Size()} // valid prefix lengths: header, then after each batch
	for _, b := range want {
		if _, err := l.Append(b.Key, b.Ops); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, l.Size())
	}
	l.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := int64(len(full)) - 1; cut >= boundaries[0]; cut-- {
		// Largest whole-batch boundary at or below the cut.
		wantValid := boundaries[0]
		wantBatches := 0
		for i, b := range boundaries {
			if b <= cut {
				wantValid, wantBatches = b, i
			}
		}
		p := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, rep, err := Open(snapshot.OS{}, p, testFP)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(rep.Batches) != wantBatches {
			t.Fatalf("cut %d: replayed %d batches, want %d", cut, len(rep.Batches), wantBatches)
		}
		if wantBatches > 0 && !reflect.DeepEqual(rep.Batches, want[:wantBatches]) {
			t.Fatalf("cut %d: replayed batches diverge from the acked prefix", cut)
		}
		if rep.TruncatedBytes != cut-wantValid {
			t.Fatalf("cut %d: truncated %d bytes, want %d", cut, rep.TruncatedBytes, cut-wantValid)
		}
		if fi, _ := os.Stat(p); fi.Size() != wantValid {
			t.Fatalf("cut %d: file is %d bytes after recovery, want %d", cut, fi.Size(), wantValid)
		}
		// The recovered log must accept new appends at the right sequence.
		if seq, err := l2.Append("resume", testOps(1)); err != nil || seq != uint64(wantBatches)+1 {
			t.Fatalf("cut %d: resume append seq=%d err=%v", cut, seq, err)
		}
		l2.Close()
	}

	// Cut inside the header: unusable log is set aside, never deleted.
	for _, cut := range []int64{0, 1, headerSize - 1} {
		p := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, rep, err := Open(snapshot.OS{}, p, testFP)
		if err != nil {
			t.Fatalf("header cut %d: %v", cut, err)
		}
		if cut == 0 {
			// Empty file parses as no header; still set aside.
		}
		if rep.SetAside == "" {
			t.Fatalf("header cut %d: not set aside", cut)
		}
		if _, err := os.Stat(rep.SetAside); err != nil {
			t.Fatalf("header cut %d: set-aside file missing: %v", cut, err)
		}
		l2.Close()
	}
}

// Kill the process at every byte offset of an append: the batch was never
// acknowledged, so after recovery the log must contain exactly the
// previously acked batches, and the rolled-back log must keep working.
func TestKillAtEveryAppendOffset(t *testing.T) {
	fsys := chaos.NewFS()
	l, path := openFresh(t, fsys)
	acked := []Batch{{Seq: 1, Key: "base", Ops: testOps(2)}}
	if _, err := l.Append("base", testOps(2)); err != nil {
		t.Fatal(err)
	}
	goodSize := l.Size()

	// Size the sweep: a full record of this batch shape.
	probe := append([]byte(nil), frameRecord(mustEncodeBatch(t, Batch{Seq: 2, Key: "kill", Ops: testOps(3)}))...)
	for off := int64(0); off < int64(len(probe)); off++ {
		fsys.FailWriteAt(off, nil)
		if _, err := l.Append("kill", testOps(3)); err == nil {
			t.Fatalf("offset %d: torn append succeeded", off)
		}
		fsys.DisarmAll()
		if l.Size() != goodSize {
			t.Fatalf("offset %d: size %d after rollback, want %d", off, l.Size(), goodSize)
		}
		// Crash-restart: reopen from disk and compare against acked state.
		l2, rep, err := Open(chaos.NewFS(), path, testFP)
		if err != nil {
			t.Fatalf("offset %d: reopen: %v", off, err)
		}
		if !reflect.DeepEqual(rep.Batches, acked) {
			t.Fatalf("offset %d: replay %+v, want acked %+v", off, rep.Batches, acked)
		}
		if rep.TruncatedBytes != 0 {
			t.Fatalf("offset %d: rollback left %d torn bytes for replay", off, rep.TruncatedBytes)
		}
		l2.Close()
	}

	// The surviving handle still works once the fault clears.
	seq, err := l.Append("after", testOps(1))
	if err != nil || seq != 2 {
		t.Fatalf("append after sweep: seq=%d err=%v", seq, err)
	}
}

// ENOSPC mid-append behaves like any torn write: error to the caller,
// rollback, no phantom batch on replay.
func TestAppendENOSPC(t *testing.T) {
	fsys := chaos.NewFS()
	l, path := openFresh(t, fsys)
	enospc := errors.New("no space left on device")
	fsys.FailWriteAt(5, enospc)
	if _, err := l.Append("k", testOps(2)); !errors.Is(err, enospc) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	fsys.DisarmAll()
	if _, err := l.Append("k", testOps(2)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, rep, err := Open(snapshot.OS{}, path, testFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Batches) != 1 || rep.Batches[0].Seq != 1 {
		t.Fatalf("replay after ENOSPC = %+v", rep.Batches)
	}
}

// A failed rollback poisons the log instead of leaving a torn record where
// a later append could bury it.
func TestPoisonedAfterFailedRollback(t *testing.T) {
	fsys := chaos.NewFS()
	l, _ := openFresh(t, fsys)
	fsys.FailWriteAt(3, nil)
	// Truncate cannot be failed independently; simulate by removing the
	// file so the real truncate fails.
	if err := os.Remove(l.path); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append("k", testOps(1)); err == nil {
		t.Fatal("append succeeded with armed fault and missing file")
	}
	fsys.DisarmAll()
	if _, err := l.Append("k", testOps(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on poisoned log: %v, want ErrClosed", err)
	}
}

// Flip every byte of a healthy log, one at a time: recovery must yield a
// prefix of the acked batches (CRC catches the flip) or set the log aside
// (header flips) — never a silently divergent batch.
func TestBitFlipSweep(t *testing.T) {
	l, path := openFresh(t, snapshot.OS{})
	want := []Batch{
		{Seq: 1, Key: "a", Ops: testOps(3)},
		{Seq: 2, Key: "bb", Ops: testOps(2)},
	}
	for _, b := range want {
		if _, err := l.Append(b.Key, b.Ops); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x40
		p := filepath.Join(t.TempDir(), "flip.wal")
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		l2, rep, err := Open(snapshot.OS{}, p, testFP)
		if err != nil {
			t.Fatalf("flip %d: %v", i, err)
		}
		l2.Close()
		if i < headerSize {
			if rep.SetAside == "" {
				t.Fatalf("flip %d (header): log not set aside", i)
			}
			continue
		}
		if rep.SetAside != "" {
			t.Fatalf("flip %d: body flip set the log aside", i)
		}
		if len(rep.Batches) > len(want) {
			t.Fatalf("flip %d: %d batches from a 2-batch log", i, len(rep.Batches))
		}
		if n := len(rep.Batches); n > 0 && !reflect.DeepEqual(rep.Batches, want[:n]) {
			t.Fatalf("flip %d: silent divergence: %+v", i, rep.Batches)
		}
		if len(rep.Batches) == len(want) && rep.TruncatedBytes == 0 {
			t.Fatalf("flip %d: flip at byte %d of %d went undetected", i, i, len(full))
		}
	}
}

func TestResetCompaction(t *testing.T) {
	fsys := chaos.NewFS()
	l, path := openFresh(t, fsys)
	for i := 0; i < 3; i++ {
		if _, err := l.Append("k", testOps(3)); err != nil {
			t.Fatal(err)
		}
	}
	big := l.Size()

	// Torn rename during compaction: the old log must survive untouched.
	fsys.FailRename(nil)
	if err := l.Reset(0x1111, []CheckpointEntry{{Key: "k", Seq: 3}}); err == nil {
		t.Fatal("reset with torn rename succeeded")
	}
	fsys.DisarmAll()
	if l.Size() != big {
		t.Fatalf("failed reset changed size to %d", l.Size())
	}
	if seq, err := l.Append("k2", testOps(1)); err != nil || seq != 4 {
		t.Fatalf("append after failed reset: seq=%d err=%v", seq, err)
	}

	newFP := uint64(0x2222)
	want := []CheckpointEntry{{Key: "k", Seq: 3}, {Key: "k2", Seq: 4}}
	if err := l.Reset(newFP, want); err != nil {
		t.Fatal(err)
	}
	if l.Size() >= big || l.Fingerprint() != newFP {
		t.Fatalf("post-reset size=%d fp=%x", l.Size(), l.Fingerprint())
	}
	// New log: sequencing continues (an acked seq is never reissued),
	// checkpoint entries replay with their original seqs, old batches gone.
	if seq, err := l.Append("k3", testOps(1)); err != nil || seq != 5 {
		t.Fatalf("post-reset append seq=%d err=%v", seq, err)
	}
	l.Close()
	l2, rep, err := Open(snapshot.OS{}, path, newFP)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !reflect.DeepEqual(rep.Checkpoint, want) {
		t.Fatalf("checkpoint = %v, want %v", rep.Checkpoint, want)
	}
	if len(rep.Batches) != 1 || rep.Batches[0].Key != "k3" || rep.Batches[0].Seq != 5 {
		t.Fatalf("post-reset batches = %+v", rep.Batches)
	}
	// The reopened log continues past both batch and checkpoint seqs.
	if seq, err := l2.Append("k4", testOps(1)); err != nil || seq != 6 {
		t.Fatalf("post-reopen append seq=%d err=%v", seq, err)
	}
}

// A checkpoint too large for one record splits across several and replays
// back as one entry list, in order — the key table can outgrow a single
// record without making compaction unwritable.
func TestCheckpointChunking(t *testing.T) {
	key := make([]byte, maxString)
	for i := range key {
		key[i] = 'x'
	}
	// ~70 entries of ~64KiB each: > checkpointChunkBytes, so > 1 record.
	entries := make([]CheckpointEntry, 70)
	for i := range entries {
		entries[i] = CheckpointEntry{Key: string(key[:len(key)-i]), Seq: uint64(i + 1)}
	}
	payloads, err := encodeCheckpoints(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) < 2 {
		t.Fatalf("oversized checkpoint produced %d records, want >= 2", len(payloads))
	}
	var back []CheckpointEntry
	for i, p := range payloads {
		if len(p)+frameSize > checkpointChunkBytes+maxString+frameSize {
			t.Fatalf("record %d is %d bytes, over budget", i, len(p))
		}
		_, es, err := DecodePayload(p)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		back = append(back, es...)
	}
	if !reflect.DeepEqual(back, entries) {
		t.Fatal("chunked checkpoint did not round-trip")
	}

	l, path := openFresh(t, snapshot.OS{})
	if err := l.Reset(0x3333, entries); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, rep, err := Open(snapshot.OS{}, path, 0x3333)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !reflect.DeepEqual(rep.Checkpoint, entries) {
		t.Fatalf("replayed %d checkpoint entries, want %d intact", len(rep.Checkpoint), len(entries))
	}
	// nextSeq cleared the highest checkpointed ack.
	if seq, err := l2.Append("fresh", testOps(1)); err != nil || seq != uint64(len(entries))+1 {
		t.Fatalf("append after chunked replay: seq=%d err=%v", seq, err)
	}
}

// A log bound to a different base graph is preserved aside, and a fresh
// log starts — acked mutations are never silently deleted.
func TestStaleFingerprintSetAside(t *testing.T) {
	l, path := openFresh(t, snapshot.OS{})
	if _, err := l.Append("k", testOps(1)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, rep, err := Open(snapshot.OS{}, path, testFP+1)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rep.SetAside != path+".stale" || rep.SetAsideReason == "" {
		t.Fatalf("replay = %+v", rep)
	}
	if len(rep.Batches) != 0 {
		t.Fatal("batches replayed from a foreign log")
	}
	// The stale log still holds the acked batch for manual recovery.
	_, rep2, err := Open(snapshot.OS{}, rep.SetAside, testFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Batches) != 1 {
		t.Fatalf("stale log lost the acked batch: %+v", rep2.Batches)
	}
}

func mustEncodeBatch(t *testing.T, b Batch) []byte {
	t.Helper()
	p, err := encodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEncodeCaps(t *testing.T) {
	if _, err := encodeBatch(Batch{Seq: 1, Key: "k"}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty batch: %v", err)
	}
	long := make([]byte, maxString+1)
	if _, err := encodeBatch(Batch{Seq: 1, Key: string(long), Ops: testOps(1)}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized key: %v", err)
	}
	if _, err := encodeBatch(Batch{Seq: 1, Key: "k", Ops: []hin.Op{{Kind: 99}}}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("unknown op kind: %v", err)
	}
}
